//! Bounded LRU result cache with crash-safe persistence.
//!
//! The cache maps canonical query fingerprints ([`super::request::Query::cache_key`])
//! to the *serialized* result payload — the exact bytes that went out
//! the first time — so a repeat (including one after a restart) is
//! served byte-identically without re-entering the simulator.
//!
//! Persistence reuses the shared journal format
//! ([`crate::fsutil::resume_journal`]): a header line followed by one
//! fsynced `{"key","result"}` record per insertion. Appending per miss
//! means a SIGKILL loses at most the entry being written; on graceful
//! drain the journal is *compacted* — live entries only, LRU order —
//! through [`crate::fsutil::atomic_write`], so the file never grows
//! beyond one record per live entry plus whatever the current process
//! appended. A corrupt or foreign state file is a warning and a fresh
//! cache, never a crashed server: the cache is an accelerator, not a
//! source of truth.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{json, Value};

use crate::fsutil::{self, JournalFormat};

/// Journal identity for the persisted cache state file.
const FORMAT: JournalFormat = JournalFormat {
    name: "kagura-servecache",
    version: 1,
    log_tag: "serve",
    torn_note: "its entry will be recomputed on demand",
    mismatch_hint: "delete the state file to start cold",
};

/// The state file's fingerprint: results depend only on the per-entry
/// query key, so the header pins nothing but the payload schema.
fn state_fingerprint() -> Value {
    json!({ "server": "simrun-serve", "schema": 1u64 })
}

/// Bounded LRU cache of serialized query results (see module docs).
pub struct ResultCache {
    capacity: usize,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
    /// key → (serialized result, last-access tick).
    entries: HashMap<String, (String, u64)>,
    /// Append handle on the state journal, when persistence is on.
    journal: Option<File>,
    path: Option<PathBuf>,
}

impl ResultCache {
    /// Opens the cache, warming from `path` when it holds a valid state
    /// journal. Corruption or a foreign header degrades to an empty
    /// cache with a stderr warning (the file is recreated); `None`
    /// disables persistence entirely.
    pub fn open(path: Option<&Path>, capacity: usize) -> ResultCache {
        let capacity = capacity.max(1);
        let mut cache = ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            journal: None,
            path: path.map(Path::to_path_buf),
        };
        let Some(path) = path else { return cache };
        match fsutil::resume_journal(path, &FORMAT, &state_fingerprint()) {
            Ok(Some((file, records))) => {
                cache.journal = Some(file);
                // Replay in file order: later records win, and the
                // replay clock reproduces recency so the capacity cut
                // keeps the most recently written entries.
                for record in records {
                    if let (Some(k), Some(r)) = (
                        record.get("key").and_then(Value::as_str),
                        record.get("result").and_then(Value::as_str),
                    ) {
                        cache.tick += 1;
                        cache.entries.insert(k.to_string(), (r.to_string(), cache.tick));
                        cache.evict_to_capacity();
                    }
                }
            }
            Ok(None) => match fsutil::create_journal(path, &FORMAT, &state_fingerprint()) {
                Ok(file) => cache.journal = Some(file),
                Err(e) => eprintln!("[serve] cache persistence disabled ({}: {e})", path.display()),
            },
            Err(e) => {
                eprintln!("[serve] ignoring unusable cache state ({e}); starting cold");
                match fsutil::create_journal(path, &FORMAT, &state_fingerprint()) {
                    Ok(file) => cache.journal = Some(file),
                    Err(e) => {
                        eprintln!("[serve] cache persistence disabled ({}: {e})", path.display());
                    }
                }
            }
        }
        cache
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(result, last)| {
            *last = tick;
            result.clone()
        })
    }

    /// Inserts a result, evicting the least-recently-used entry when
    /// over capacity, and appends it to the state journal (fsynced — a
    /// SIGKILL after this call cannot lose the entry).
    pub fn insert(&mut self, key: String, result: String) {
        self.tick += 1;
        if let Some(file) = &mut self.journal {
            let record = json!({ "key": key.clone(), "result": result.clone() });
            if let Err(e) = fsutil::append_journal_record(file, &record) {
                eprintln!("[serve] cache append failed ({e}); persistence disabled");
                self.journal = None;
            }
        }
        self.entries.insert(key, (result, self.tick));
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (_, tick))| *tick).map(|(k, _)| k.clone())
            else {
                return;
            };
            self.entries.remove(&oldest);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compacts the state journal to the live entries (LRU order, most
    /// recent last) via [`fsutil::atomic_write`]: the graceful-drain
    /// flush. A crash during compaction leaves the previous journal
    /// intact.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write or from reopening
    /// the compacted journal for appending.
    pub fn persist(&mut self) -> io::Result<()> {
        let Some(path) = self.path.clone() else { return Ok(()) };
        let header = json!({
            "journal": FORMAT.name,
            "version": FORMAT.version,
            "fingerprint": state_fingerprint(),
        });
        let mut text = serde_json::to_string(&header).expect("serializable");
        text.push('\n');
        let mut live: Vec<(&String, &(String, u64))> = self.entries.iter().collect();
        live.sort_by_key(|(_, (_, tick))| *tick);
        for (key, (result, _)) in live {
            let record = json!({ "key": key.clone(), "result": result.clone() });
            text.push_str(&serde_json::to_string(&record).expect("serializable"));
            text.push('\n');
        }
        // Close the append handle before replacing the file beneath it.
        self.journal = None;
        fsutil::atomic_write(&path, text.as_bytes())?;
        self.journal = Some(std::fs::OpenOptions::new().append(true).open(&path)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kagura_servecache_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn survives_restart_with_identical_bytes() {
        let dir = tmp("restart");
        let path = dir.join("state.jsonl");
        {
            let mut c = ResultCache::open(Some(&path), 8);
            c.insert("k1".into(), r#"{"speedup":1.25}"#.into());
            c.insert("k2".into(), r#"{"speedup":0.99}"#.into());
            // No persist(): simulate SIGKILL — appends alone must be
            // durable.
        }
        let mut c = ResultCache::open(Some(&path), 8);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("k1").as_deref(), Some(r#"{"speedup":1.25}"#));
        assert_eq!(c.get("k2").as_deref(), Some(r#"{"speedup":0.99}"#));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let mut c = ResultCache::open(None, 2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        assert!(c.get("a").is_some(), "touch a so b is the LRU entry");
        c.insert("c".into(), "3".into());
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some() && c.get("c").is_some());
    }

    #[test]
    fn later_journal_records_win_and_capacity_holds_on_load() {
        let dir = tmp("replay");
        let path = dir.join("state.jsonl");
        {
            let mut c = ResultCache::open(Some(&path), 8);
            c.insert("k".into(), "old".into());
            c.insert("k".into(), "new".into());
            for i in 0..5 {
                c.insert(format!("fill{i}"), "x".into());
            }
        }
        let mut full = ResultCache::open(Some(&path), 16);
        assert_eq!(full.get("k").as_deref(), Some("new"), "the later record must win");
        assert_eq!(full.len(), 6, "duplicate keys must not double-count");
        drop(full);
        let c = ResultCache::open(Some(&path), 2);
        assert_eq!(c.len(), 2, "load must enforce the (smaller) capacity");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_state_degrades_to_cold_start() {
        let dir = tmp("corrupt");
        let path = dir.join("state.jsonl");
        fs::write(&path, "garbage, not a journal\n").unwrap();
        let mut c = ResultCache::open(Some(&path), 4);
        assert!(c.is_empty(), "corrupt state must not crash or populate");
        // And persistence still works after the recovery.
        c.insert("k".into(), "v".into());
        drop(c);
        let mut c = ResultCache::open(Some(&path), 4);
        assert_eq!(c.get("k").as_deref(), Some("v"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_compacts_to_live_entries() {
        let dir = tmp("compact");
        let path = dir.join("state.jsonl");
        let mut c = ResultCache::open(Some(&path), 2);
        for i in 0..10 {
            c.insert(format!("k{i}"), format!("v{i}"));
        }
        let appended = fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(appended, 11, "header + one append per insert");
        c.persist().unwrap();
        let compacted = fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(compacted, 3, "header + capacity entries after compaction");
        // Appends still work after compaction.
        c.insert("fresh".into(), "w".into());
        drop(c);
        let mut c = ResultCache::open(Some(&path), 4);
        assert_eq!(c.get("fresh").as_deref(), Some("w"));
        assert_eq!(c.get("k9").as_deref(), Some("v9"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
