//! Strict NDJSON request parsing for `simrun serve`.
//!
//! Every request line must be one flat JSON object with a known `op`
//! and only known fields; anything else is a `bad_request` whose detail
//! names the offending field and, for plausible typos, the nearest
//! valid spelling — the same did-you-mean contract the CLI flag
//! validators give (`kagura_bench::cli::suggest`). Strictness is the
//! point: a long-running service that silently dropped a misspelled
//! `"governer"` field would answer a *different question* than the
//! client asked, with no error to show for it.
//!
//! A parsed query is immediately canonicalized: defaults are filled in,
//! aliases resolved (`"none"` → `"baseline"`, `"sweep"` →
//! `"sweepcache"`), and the result serialized as a fixed-field-order
//! fingerprint ([`Query::cache_key`]) — the same shape as the journal
//! config fingerprints, so two spellings of one configuration share one
//! cache entry. Deadline and budget fields are deliberately *excluded*
//! from the key: budgets are watchdogs, and a run that completed under
//! a non-triggering budget is byte-identical to an unlimited one
//! (budget-exhausted results are never cached).

use ehs_compress::Algorithm;
use ehs_energy::{CapacitorConfig, TraceKind};
use ehs_sim::{EhsDesign, Extension, GovernorSpec, SimConfig, StepBudget};
use ehs_workloads::App;
use serde_json::{json, Value};

use crate::cli::suggest;

/// Every field a request object may carry, in canonical order.
pub const KNOWN_FIELDS: &[&str] = &[
    "op",
    "id",
    "app",
    "scale",
    "governor",
    "design",
    "algorithm",
    "trace",
    "seed",
    "cache",
    "ways",
    "block",
    "cap",
    "extension",
    "deadline_ms",
    "max_insts",
];

/// The operations the server answers.
pub const KNOWN_OPS: &[&str] = &["query", "health", "metrics", "shutdown"];

/// One parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) one what-if simulation.
    Query {
        /// Client-chosen correlation id, echoed verbatim in the reply.
        id: Value,
        /// The validated, canonicalized query (boxed: a resolved
        /// `SimConfig` dwarfs the other variants).
        query: Box<Query>,
    },
    /// Liveness probe.
    Health {
        /// Client-chosen correlation id.
        id: Value,
    },
    /// Server metrics snapshot.
    Metrics {
        /// Client-chosen correlation id.
        id: Value,
    },
    /// Begin a graceful drain (equivalent to SIGTERM).
    Shutdown {
        /// Client-chosen correlation id.
        id: Value,
    },
}

impl Request {
    /// The request's correlation id (JSON `null` when the client sent
    /// none).
    pub fn id(&self) -> &Value {
        match self {
            Request::Query { id, .. }
            | Request::Health { id }
            | Request::Metrics { id }
            | Request::Shutdown { id } => id,
        }
    }
}

/// A validated what-if query with all defaults resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Workload to simulate.
    pub app: App,
    /// Program scale factor (must be positive).
    pub scale: f64,
    /// Canonical governor name (`"baseline"`, `"kagura"`, …).
    pub governor: String,
    /// Fully resolved simulation config for the requested governor.
    pub cfg: SimConfig,
    /// Per-request wall-clock deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Per-request executed-instruction budget, if any.
    pub max_insts: Option<u64>,
}

impl Query {
    /// The canonical cache key: the resolved configuration serialized
    /// with fixed field order. Two requests that resolve to the same
    /// configuration — through defaults or aliases — share one key;
    /// deadline/budget fields never enter it (see module docs).
    pub fn cache_key(&self) -> String {
        let d = &self.cfg.system.dcache;
        let extension = match self.cfg.extension {
            Extension::None => "none",
            Extension::Edbp { .. } => "edbp",
            Extension::Ipex { .. } => "ipex",
        };
        let fingerprint = json!({
            "app": self.app.name(),
            "scale": self.scale,
            "governor": self.governor.clone(),
            "design": self.cfg.design.name(),
            "algorithm": format!("{}", self.cfg.algorithm).to_ascii_lowercase(),
            "trace": format!("{:?}", self.cfg.trace_kind).to_ascii_lowercase(),
            "seed": self.cfg.trace_seed,
            "cache": u64::from(d.size_bytes),
            "ways": u64::from(d.ways),
            "block": u64::from(d.block_size),
            "cap_uf": self.cfg.capacitor.capacitance * 1e6,
            "extension": extension,
        });
        serde_json::to_string(&fingerprint).expect("fingerprint serializes")
    }

    /// The request's own watchdog budget (unlimited when the client set
    /// neither field). The server intersects this with its own default
    /// via [`StepBudget::min_with`].
    pub fn budget(&self) -> StepBudget {
        StepBudget {
            max_executed_insts: self.max_insts,
            max_wall: self.deadline_ms.map(std::time::Duration::from_millis),
        }
    }
}

/// Error detail plus the best-effort correlation id extracted from the
/// malformed line, so even a rejection can be routed back to its
/// request.
pub type ParseError = (Value, String);

/// Did-you-mean error for a bad enum value.
fn bad_enum(field: &str, got: &str, candidates: &[&str]) -> String {
    match suggest(got, candidates) {
        Some(nearest) => format!("unknown {field} {got:?} (did you mean {nearest:?}?)"),
        None => {
            format!("unknown {field} {got:?} (expected one of: {})", candidates.join(", "))
        }
    }
}

/// Parses and validates one request line. On failure the error carries
/// the correlation id when one could still be extracted (valid JSON
/// object with an `id` member), else JSON `null`.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| (Value::Null, format!("request is not valid JSON: {e}")))?;
    let Some(members) = value.as_object() else {
        return Err((Value::Null, "request must be a JSON object".to_string()));
    };
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let fail = |msg: String| (id.clone(), msg);

    // Reject unknown fields before anything else: a typo like
    // "governer" must never silently fall back to the default.
    for (key, _) in members {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            let detail = match suggest(key, KNOWN_FIELDS) {
                Some(nearest) => {
                    format!("unknown field `{key}` (did you mean `{nearest}`?)")
                }
                None => format!("unknown field `{key}`"),
            };
            return Err(fail(detail));
        }
    }

    let op = value
        .get("op")
        .ok_or_else(|| fail("missing field `op`".to_string()))?
        .as_str()
        .ok_or_else(|| fail("field `op` is not a string".to_string()))?;
    match op {
        "health" | "metrics" | "shutdown" => {
            // Control ops take no query fields; leftovers are mistakes.
            for (key, _) in members {
                if key != "op" && key != "id" {
                    return Err(fail(format!("field `{key}` is not valid for op {op:?}")));
                }
            }
            Ok(match op {
                "health" => Request::Health { id },
                "metrics" => Request::Metrics { id },
                _ => Request::Shutdown { id },
            })
        }
        "query" => {
            Ok(Request::Query { id: id.clone(), query: Box::new(parse_query(&value, &id)?) })
        }
        other => Err(fail(bad_enum("op", other, KNOWN_OPS))),
    }
}

/// Typed field accessors that name the offending field on mismatch.
fn get_str<'a>(value: &'a Value, key: &str) -> Result<Option<&'a str>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| format!("field `{key}` is not a string")),
    }
}

fn get_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => {
            v.as_u64().map(Some).ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
        }
    }
}

fn get_f64(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| format!("field `{key}` is not a number")),
    }
}

/// Validates the query fields of a `{"op":"query"}` request and
/// resolves them onto a [`SimConfig`], mirroring `simrun`'s flag
/// parsing (same aliases, same defaults) so the service answers exactly
/// what the CLI would.
fn parse_query(value: &Value, id: &Value) -> Result<Query, ParseError> {
    let fail = |msg: String| (id.clone(), msg);
    let app_name =
        get_str(value, "app").map_err(&fail)?.ok_or_else(|| fail("missing field `app`".into()))?;
    let app = App::from_name(app_name).ok_or_else(|| {
        let names: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
        fail(bad_enum("app", app_name, &names))
    })?;
    let scale = get_f64(value, "scale").map_err(&fail)?.unwrap_or(1.0);
    if scale.is_nan() || scale <= 0.0 {
        return Err(fail(format!("field `scale` must be positive, got {scale}")));
    }

    let mut cfg = SimConfig::table1();
    let mut governor = "baseline".to_string();
    if let Some(g) = get_str(value, "governor").map_err(&fail)? {
        const GOVERNORS: &[&str] =
            &["baseline", "none", "always", "acc", "kagura", "ideal-acc", "ideal-kagura"];
        (governor, cfg.governor) = match g {
            "baseline" | "none" => ("baseline".into(), GovernorSpec::NoCompression),
            "always" => ("always".into(), GovernorSpec::AlwaysCompress),
            "acc" => ("acc".into(), GovernorSpec::Acc),
            "kagura" => ("kagura".into(), GovernorSpec::AccKagura(Default::default())),
            "ideal-acc" => ("ideal-acc".into(), GovernorSpec::IdealAcc),
            "ideal-kagura" => {
                ("ideal-kagura".into(), GovernorSpec::IdealAccKagura(Default::default()))
            }
            other => return Err(fail(bad_enum("governor", other, GOVERNORS))),
        };
    }
    if let Some(d) = get_str(value, "design").map_err(&fail)? {
        const DESIGNS: &[&str] = &["nvsram", "nvsramcache", "nvmr", "sweepcache", "sweep"];
        cfg.design = match d {
            "nvsram" | "nvsramcache" => EhsDesign::NvsramCache,
            "nvmr" => EhsDesign::Nvmr,
            "sweepcache" | "sweep" => EhsDesign::SweepCache,
            other => return Err(fail(bad_enum("design", other, DESIGNS))),
        };
    }
    if let Some(a) = get_str(value, "algorithm").map_err(&fail)? {
        const ALGORITHMS: &[&str] = &["bdi", "fpc", "cpack", "c-pack", "dzc", "bpc", "fvc"];
        cfg.algorithm = match a.to_ascii_lowercase().as_str() {
            "bdi" => Algorithm::Bdi,
            "fpc" => Algorithm::Fpc,
            "cpack" | "c-pack" => Algorithm::CPack,
            "dzc" => Algorithm::Dzc,
            "bpc" => Algorithm::Bpc,
            "fvc" => Algorithm::Fvc,
            other => return Err(fail(bad_enum("algorithm", other, ALGORITHMS))),
        };
    }
    if let Some(t) = get_str(value, "trace").map_err(&fail)? {
        const TRACES: &[&str] = &["rfhome", "rf", "solar", "thermal"];
        cfg.trace_kind = match t.to_ascii_lowercase().as_str() {
            "rfhome" | "rf" => TraceKind::RfHome,
            "solar" => TraceKind::Solar,
            "thermal" => TraceKind::Thermal,
            other => return Err(fail(bad_enum("trace", other, TRACES))),
        };
    }
    if let Some(seed) = get_u64(value, "seed").map_err(&fail)? {
        cfg.trace_seed = seed;
    }
    let small = |key: &str, n: u64| -> Result<u32, ParseError> {
        u32::try_from(n).map_err(|_| fail(format!("field `{key}` is out of range")))
    };
    if let Some(c) = get_u64(value, "cache").map_err(&fail)? {
        let bytes = small("cache", c)?;
        cfg.system.icache = cfg.system.icache.with_size(bytes);
        cfg.system.dcache = cfg.system.dcache.with_size(bytes);
    }
    if let Some(w) = get_u64(value, "ways").map_err(&fail)? {
        let ways = small("ways", w)?;
        cfg.system.icache = cfg.system.icache.with_ways(ways);
        cfg.system.dcache = cfg.system.dcache.with_ways(ways);
    }
    if let Some(b) = get_u64(value, "block").map_err(&fail)? {
        let bytes = small("block", b)?;
        cfg.system.icache = cfg.system.icache.with_block_size(bytes);
        cfg.system.dcache = cfg.system.dcache.with_block_size(bytes);
    }
    if let Some(uf) = get_f64(value, "cap").map_err(&fail)? {
        if uf.is_nan() || uf <= 0.0 {
            return Err(fail(format!("field `cap` must be positive, got {uf}")));
        }
        cfg.capacitor = CapacitorConfig::with_capacitance_uf(uf);
    }
    if let Some(e) = get_str(value, "extension").map_err(&fail)? {
        const EXTENSIONS: &[&str] = &["none", "edbp", "ipex"];
        cfg.extension = match e {
            "none" => Extension::None,
            "edbp" => Extension::edbp(),
            "ipex" => Extension::ipex(),
            other => return Err(fail(bad_enum("extension", other, EXTENSIONS))),
        };
    }
    let deadline_ms = get_u64(value, "deadline_ms").map_err(&fail)?;
    let max_insts = get_u64(value, "max_insts").map_err(&fail)?;
    if deadline_ms == Some(0) {
        return Err(fail("field `deadline_ms` must be positive".into()));
    }
    if max_insts == Some(0) {
        return Err(fail("field `max_insts` must be positive".into()));
    }
    Ok(Query { app, scale, governor, cfg, deadline_ms, max_insts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_query_resolves_defaults_and_aliases_to_one_key() {
        let a = parse_request(r#"{"op":"query","id":"q1","app":"sha","scale":0.01}"#).unwrap();
        let b = parse_request(
            r#"{"op":"query","id":"q2","app":"sha","scale":0.01,"governor":"none","design":"nvsramcache"}"#,
        )
        .unwrap();
        let (Request::Query { query: qa, .. }, Request::Query { query: qb, .. }) = (a, b) else {
            panic!("expected queries");
        };
        assert_eq!(qa.cache_key(), qb.cache_key(), "aliases and defaults must canonicalize");
        assert!(qa.cache_key().contains("\"governor\":\"baseline\""));
        assert!(qa.budget().is_unlimited());
    }

    #[test]
    fn budget_fields_stay_out_of_the_cache_key() {
        let with = parse_request(
            r#"{"op":"query","app":"sha","scale":0.01,"deadline_ms":5,"max_insts":100}"#,
        )
        .unwrap();
        let without = parse_request(r#"{"op":"query","app":"sha","scale":0.01}"#).unwrap();
        let (Request::Query { query: qw, .. }, Request::Query { query: qo, .. }) = (with, without)
        else {
            panic!("expected queries");
        };
        assert_eq!(qw.cache_key(), qo.cache_key());
        assert_eq!(qw.budget().max_executed_insts, Some(100));
        assert_eq!(qw.budget().max_wall, Some(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn unknown_fields_and_values_get_did_you_mean() {
        let err = parse_request(r#"{"op":"query","app":"sha","governer":"kagura"}"#).unwrap_err();
        assert!(err.1.contains("`governer`") && err.1.contains("`governor`"), "{}", err.1);
        let err = parse_request(r#"{"op":"query","app":"sha","governor":"kagora"}"#).unwrap_err();
        assert!(err.1.contains("\"kagura\""), "{}", err.1);
        let err = parse_request(r#"{"op":"qurey","id":7}"#).unwrap_err();
        assert!(err.1.contains("\"query\""), "{}", err.1);
        assert_eq!(err.0, Value::U64(7), "id must survive op typos");
    }

    #[test]
    fn malformed_lines_are_rejected_with_detail() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{\"op\":\"query\"").is_err(), "truncated JSON");
        assert!(parse_request("[1,2]").unwrap_err().1.contains("must be a JSON object"));
        let err = parse_request(r#"{"op":"query","app":"sha","scale":"big"}"#).unwrap_err();
        assert!(err.1.contains("`scale`"), "{}", err.1);
        let err = parse_request(r#"{"op":"query","app":"sha","scale":-1}"#).unwrap_err();
        assert!(err.1.contains("positive"), "{}", err.1);
        let err = parse_request(r#"{"op":"query"}"#).unwrap_err();
        assert!(err.1.contains("`app`"), "{}", err.1);
        let err = parse_request(r#"{"op":"health","app":"sha"}"#).unwrap_err();
        assert!(err.1.contains("not valid for op"), "{}", err.1);
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(
            parse_request(r#"{"op":"health","id":"h"}"#).unwrap(),
            Request::Health { id: Value::String("h".into()) }
        );
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics { id: Value::Null }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","id":1}"#).unwrap(),
            Request::Shutdown { .. }
        ));
    }
}
