//! `simrun serve` — a hardened long-running what-if service.
//!
//! The server answers newline-delimited JSON requests ("this app, this
//! trace class, these capacitor/design knobs — predicted speedup and
//! waste?") over stdin (default) or TCP (`--tcp HOST:PORT`), without
//! paying a full `repro` invocation per question. Robustness is the
//! design center:
//!
//! * **Strict schema** — requests are validated by
//!   [`request::parse_request`]; unknown fields and bad enum values are
//!   typed `bad_request` errors with did-you-mean hints, never silent
//!   defaults.
//! * **Result cache** — each query canonicalizes to a config
//!   fingerprint ([`request::Query::cache_key`]); repeats are served
//!   from a bounded LRU ([`cache::ResultCache`]) in microseconds, and
//!   the cache persists crash-safely so a restarted server warms from
//!   disk and answers byte-identically.
//! * **Admission control** — at most `workers + queue_depth` queries
//!   are in flight; excess load is *shed* with a typed `overloaded`
//!   error carrying a `retry_after_ms` hint instead of queueing
//!   unboundedly.
//! * **Deadlines & budgets** — every simulation runs under the
//!   intersection ([`ehs_sim::StepBudget::min_with`]) of the request's
//!   budget and the server default, so a pathological query returns
//!   `budget_exhausted` instead of wedging a worker.
//! * **Failure containment** — simulations run through
//!   [`ehs_sim::parallel::run_job_with`]: panics come back as typed
//!   `sim_failed` errors (the `JobFailure` taxonomy), transient
//!   failures retry deterministically with backoff.
//! * **Graceful degradation** — SIGTERM, stdin EOF or a
//!   `{"op":"shutdown"}` request starts a drain: in-flight requests
//!   finish, new queries get `shutting_down`, and the cache journal is
//!   compacted to disk before exit. Slow clients are bounded by a
//!   per-connection write timeout.
//!
//! Liveness is a `{"op":"health"}` request away, and `server_*`
//! metrics (queue depth, shed count, cache hit rate, latency
//! histogram) are exposed through `{"op":"metrics"}`.

pub mod cache;
pub mod request;

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ehs_sim::{parallel, GovernorSpec, JobFailure, RetryPolicy, SimJob, SimStats, StepBudget};
use ehs_telemetry::{Counter, Event, Gauge, HistogramId, MetricsRegistry, Stamped};
use serde_json::{json, Value};

use crate::cli::{validate_args, CliError, FlagSpec};
use crate::fleet::cell_metrics;
use crate::fsutil;

use cache::ResultCache;
use request::{parse_request, Query, Request};

/// Set by the SIGTERM handler; polled by the serving loops.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    /// Async-signal-safe: a single relaxed store into a static.
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Everything `simrun serve` accepts.
const FLAGS: &[FlagSpec] = &[
    FlagSpec::value("--tcp"),
    FlagSpec::value("--port-file"),
    FlagSpec::value("--state"),
    FlagSpec::value("--workers"),
    FlagSpec::value("--queue-depth"),
    FlagSpec::value("--cache-capacity"),
    FlagSpec::value("--deadline-ms"),
    FlagSpec::value("--max-insts"),
    FlagSpec::value("--write-timeout-ms"),
];

/// Parsed server options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (`None` = stdin/stdout NDJSON loop).
    pub tcp: Option<String>,
    /// Where to write the actual bound address (supports `--tcp :0`).
    pub port_file: Option<PathBuf>,
    /// Cache state journal path (`None` = in-memory only).
    pub state: Option<PathBuf>,
    /// Worker-pool size (also the admission baseline).
    pub workers: usize,
    /// Extra queries admitted beyond the worker count.
    pub queue_depth: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Server-wide default budget, intersected with each request's.
    pub default_budget: StepBudget,
    /// Per-connection write timeout for slow clients.
    pub write_timeout: Duration,
}

impl ServeOptions {
    /// Parses the argument vector after the `serve` subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unknown flags/missing values,
    /// [`CliError::Config`] for values that parse but are invalid.
    pub fn parse(args: &[String]) -> Result<ServeOptions, CliError> {
        validate_args(args, FLAGS, 0).map_err(CliError::Usage)?;
        let flag = |name: &str| {
            args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
        };
        let parse_n = |name: &str| -> Result<Option<u64>, CliError> {
            flag(name)
                .map(|v| v.parse().map_err(|e| CliError::Config(format!("bad {name}: {e}"))))
                .transpose()
        };
        let workers = match parse_n("--workers")? {
            Some(0) => return Err(CliError::Config("--workers must be positive".into())),
            Some(n) => n as usize,
            None => parallel::max_workers(),
        };
        let deadline_ms = parse_n("--deadline-ms")?;
        if deadline_ms == Some(0) {
            return Err(CliError::Config("--deadline-ms must be positive".into()));
        }
        let max_insts = parse_n("--max-insts")?;
        if max_insts == Some(0) {
            return Err(CliError::Config("--max-insts must be positive".into()));
        }
        // The server always carries a wall-clock ceiling so no request
        // can wedge a worker forever, even when the client sets nothing.
        let default_budget = StepBudget {
            max_executed_insts: max_insts,
            max_wall: Some(Duration::from_millis(deadline_ms.unwrap_or(30_000))),
        };
        Ok(ServeOptions {
            tcp: flag("--tcp").map(str::to_string),
            port_file: flag("--port-file").map(PathBuf::from),
            state: flag("--state").map(PathBuf::from),
            workers,
            queue_depth: parse_n("--queue-depth")?.unwrap_or(8) as usize,
            cache_capacity: parse_n("--cache-capacity")?.unwrap_or(256).max(1) as usize,
            default_budget,
            write_timeout: Duration::from_millis(
                parse_n("--write-timeout-ms")?.filter(|&n| n > 0).unwrap_or(5_000),
            ),
        })
    }
}

/// Server-side observability: `server_*` counters, the queue-depth
/// gauge, the request-latency histogram, and the (bounded) harness
/// event log surfaced through `{"op":"metrics"}`.
struct ServerTelemetry {
    start: Instant,
    events: Vec<Stamped>,
    metrics: MetricsRegistry,
    latency_ms: HistogramId,
    requests: Counter,
    shed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    bad_requests: Counter,
    budget_exhausted: Counter,
    sim_failed: Counter,
    queue_depth: Gauge,
}

/// Cap on retained server events (sheds and drains only, so this is
/// generous; beyond it the oldest are dropped).
const MAX_EVENTS: usize = 256;

impl ServerTelemetry {
    fn new() -> Self {
        let mut metrics = MetricsRegistry::default();
        let latency_ms = metrics.histogram(
            "server_latency_ms",
            &[0.01, 0.1, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 1e4],
        );
        ServerTelemetry {
            start: Instant::now(),
            events: Vec::new(),
            latency_ms,
            requests: metrics.counter("server_requests"),
            shed: metrics.counter("server_shed"),
            cache_hits: metrics.counter("server_cache_hits"),
            cache_misses: metrics.counter("server_cache_misses"),
            bad_requests: metrics.counter("server_bad_requests"),
            budget_exhausted: metrics.counter("server_budget_exhausted"),
            sim_failed: metrics.counter("server_sim_failed"),
            queue_depth: metrics.gauge("server_queue_depth"),
            metrics,
        }
    }

    fn emit(&mut self, event: Event) {
        if self.events.len() >= MAX_EVENTS {
            self.events.remove(0);
        }
        let t_us = self.start.elapsed().as_secs_f64() * 1e6;
        self.events.push(Stamped { t_us, cycle: 0, event });
    }

    /// Retry-after hint derived from observed latency: clients backing
    /// off for about one mean request duration drain the queue without
    /// thundering back. Falls back to 100 ms before any sample exists.
    fn retry_after_ms(&self) -> u64 {
        let mean = self.metrics.histogram_data(self.latency_ms).mean();
        if mean > 0.0 {
            (mean.ceil() as u64).max(10)
        } else {
            100
        }
    }
}

/// The transport-independent server core. All request handling —
/// validation, admission, cache, execution, error taxonomy — lives
/// behind [`Core::handle_line`], so every robustness property is
/// testable in-process without sockets.
pub struct Core {
    opts: ServeOptions,
    cache: Mutex<ResultCache>,
    /// Queries admitted (waiting for a permit or running).
    admitted: AtomicUsize,
    /// Requests anywhere between parse and response write; drain waits
    /// for this to reach zero so no response is torn mid-write.
    busy: AtomicUsize,
    draining: AtomicBool,
    telemetry: Mutex<ServerTelemetry>,
}

/// RAII decrement for one admitted query.
struct Admitted<'a>(&'a Core);

impl Drop for Admitted<'_> {
    fn drop(&mut self) {
        self.0.admitted.fetch_sub(1, Ordering::SeqCst);
        self.0.set_queue_gauge();
    }
}

/// RAII decrement for one busy request.
struct Busy<'a>(&'a Core);

impl Drop for Busy<'_> {
    fn drop(&mut self) {
        self.0.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Core {
    /// Builds the core, warming the result cache from the state file.
    pub fn new(opts: ServeOptions) -> Core {
        parallel::set_max_workers(opts.workers);
        let cache = ResultCache::open(opts.state.as_deref(), opts.cache_capacity);
        if !cache.is_empty() {
            eprintln!("[serve] warmed {} cache entries from disk", cache.len());
        }
        Core {
            cache: Mutex::new(cache),
            admitted: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            telemetry: Mutex::new(ServerTelemetry::new()),
            opts,
        }
    }

    /// Whether a drain has begun (SIGTERM, EOF, or shutdown op).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || SIGTERM_RECEIVED.load(Ordering::SeqCst)
    }

    /// Starts the graceful drain: new queries are rejected from now on.
    pub fn begin_drain(&self, why: &str) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            let in_flight = self.busy.load(Ordering::SeqCst) as u64;
            let entries = self.cache.lock().unwrap_or_else(|e| e.into_inner()).len() as u64;
            eprintln!("[serve] draining ({why}): {in_flight} in flight, {entries} cached");
            let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
            t.emit(Event::ServerDrain { in_flight, cache_entries: entries });
        }
    }

    /// Blocks until every in-flight request has written its response,
    /// then compacts the cache journal. The terminal step of any drain.
    pub fn finish_drain(&self) -> io::Result<()> {
        while self.busy.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).persist()
    }

    fn set_queue_gauge(&self) {
        let depth = self.admitted.load(Ordering::SeqCst) as f64;
        let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
        let g = t.queue_depth;
        t.metrics.set(g, depth);
    }

    /// Handles one request line end to end, returning the response line
    /// (without trailing newline). Blank lines return `None`.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        let _busy_guard = (self.busy.fetch_add(1, Ordering::SeqCst), Busy(self));
        let t0 = Instant::now();
        {
            let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
            let c = t.requests;
            t.metrics.inc(c, 1);
        }
        let response = match parse_request(trimmed) {
            Err((id, detail)) => {
                let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
                let c = t.bad_requests;
                t.metrics.inc(c, 1);
                error_reply(&id, "bad_request", &detail, &[])
            }
            Ok(Request::Health { id }) => self.health_reply(&id),
            Ok(Request::Metrics { id }) => self.metrics_reply(&id),
            Ok(Request::Shutdown { id }) => {
                self.begin_drain("shutdown request");
                ok_reply(&id, "draining", &Value::Bool(true))
            }
            Ok(Request::Query { id, query }) => self.handle_query(&id, &query, t0),
        };
        Some(response)
    }

    fn health_reply(&self, id: &Value) -> String {
        let status = if self.draining() { "draining" } else { "ok" };
        let health = json!({
            "status": status,
            "in_flight": self.busy.load(Ordering::SeqCst).saturating_sub(1) as u64,
            "admitted": self.admitted.load(Ordering::SeqCst) as u64,
            "cache_entries": self.cache.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            "workers": self.opts.workers as u64,
        });
        ok_reply(id, "health", &health)
    }

    fn metrics_reply(&self, id: &Value) -> String {
        let t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
        let events: Vec<Value> = t.events.iter().map(Stamped::to_value).collect();
        let body = json!({ "registry": t.metrics.to_json(), "events": events });
        ok_reply(id, "metrics", &body)
    }

    fn handle_query(&self, id: &Value, query: &Query, t0: Instant) -> String {
        if self.draining() {
            return error_reply(
                id,
                "shutting_down",
                "server is draining; no new queries are admitted",
                &[],
            );
        }
        // Cache hits bypass admission entirely: they cost microseconds
        // and must keep working even when the queue is full.
        let key = query.cache_key();
        let hit = self.cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key);
        if let Some(result) = hit {
            let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
            let (c, h) = (t.cache_hits, t.latency_ms);
            t.metrics.inc(c, 1);
            t.metrics.observe(h, t0.elapsed().as_secs_f64() * 1e3);
            return ok_result(id, &result);
        }

        // Bounded admission: beyond workers + queue_depth, shedload
        // with a typed error instead of queueing unboundedly.
        let cap = self.opts.workers + self.opts.queue_depth;
        loop {
            let admitted = self.admitted.load(Ordering::SeqCst);
            if admitted >= cap {
                let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
                let c = t.shed;
                t.metrics.inc(c, 1);
                let retry_after_ms = t.retry_after_ms();
                t.emit(Event::RequestShed { admitted: admitted as u64, retry_after_ms });
                drop(t);
                return error_reply(
                    id,
                    "overloaded",
                    &format!("admission queue full ({admitted}/{cap} in flight)"),
                    &[("retry_after_ms", retry_after_ms.into())],
                );
            }
            if self
                .admitted
                .compare_exchange(admitted, admitted + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        let _admitted_guard = Admitted(self);
        self.set_queue_gauge();
        {
            let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
            let c = t.cache_misses;
            t.metrics.inc(c, 1);
        }

        let response = match self.execute(query) {
            Ok(result) => {
                self.cache.lock().unwrap_or_else(|e| e.into_inner()).insert(key, result.clone());
                ok_result(id, &result)
            }
            Err(JobFailure::TimedOut { detail, executed_insts }) => {
                let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
                let c = t.budget_exhausted;
                t.metrics.inc(c, 1);
                drop(t);
                error_reply(
                    id,
                    "budget_exhausted",
                    &detail,
                    &[("executed_insts", executed_insts.into())],
                )
            }
            Err(failure) => {
                let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
                let c = t.sim_failed;
                t.metrics.inc(c, 1);
                drop(t);
                error_reply(
                    id,
                    "sim_failed",
                    &failure.to_string(),
                    &[("failure", failure.kind().into())],
                )
            }
        };
        let mut t = self.telemetry.lock().unwrap_or_else(|e| e.into_inner());
        let h = t.latency_ms;
        t.metrics.observe(h, t0.elapsed().as_secs_f64() * 1e3);
        response
    }

    /// Runs the baseline/candidate pair for one query on the worker
    /// pool and serializes the result payload. Both runs carry the
    /// intersection of the request budget and the server default.
    fn execute(&self, query: &Query) -> Result<String, JobFailure> {
        let budget = query.budget().min_with(self.opts.default_budget);
        let mut baseline_cfg = query.cfg.clone();
        baseline_cfg.governor = GovernorSpec::NoCompression;
        baseline_cfg.step_budget = budget;
        let mut candidate_cfg = query.cfg.clone();
        candidate_cfg.step_budget = budget;

        let policy = RetryPolicy::default();
        let baseline =
            parallel::run_job_with(SimJob::new(query.app, query.scale, baseline_cfg), policy)?;
        let candidate = if query.governor == "baseline" {
            baseline.clone()
        } else {
            parallel::run_job_with(SimJob::new(query.app, query.scale, candidate_cfg), policy)?
        };

        let metrics = cell_metrics(&baseline, &candidate);
        let opt = |v: Option<f64>| v.map(Value::from).unwrap_or(Value::Null);
        let payload = json!({
            "app": query.app.name(),
            "scale": query.scale,
            "governor": query.governor.clone(),
            "speedup": opt(metrics[0]),
            "forward_progress": opt(metrics[1]),
            "waste_fraction": opt(metrics[2]),
            "ledger_violations": opt(metrics[3]),
            "baseline": run_summary(&baseline),
            "candidate": run_summary(&candidate),
        });
        Ok(serde_json::to_string(&payload).expect("payload serializes"))
    }
}

/// Per-run summary embedded in a query result.
fn run_summary(stats: &SimStats) -> Value {
    json!({
        "completed": stats.completed,
        "committed_insts": stats.committed_insts,
        "executed_insts": stats.executed_insts,
        "power_cycles": stats.power_cycle_count,
        "total_microjoules": stats.total_energy().microjoules(),
    })
}

/// Success envelope with an arbitrary body under `key`.
fn ok_reply(id: &Value, key: &str, body: &Value) -> String {
    let reply = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("id".to_string(), id.clone()),
        (key.to_string(), body.clone()),
    ]);
    serde_json::to_string(&reply).expect("reply serializes")
}

/// Success envelope for a query: the result payload is spliced in as
/// raw pre-serialized bytes, so cached repeats are byte-identical to
/// the first response (same id ⇒ same bytes, even across restarts).
fn ok_result(id: &Value, result: &str) -> String {
    format!(
        "{{\"ok\":true,\"id\":{},\"result\":{result}}}",
        serde_json::to_string(id).expect("id serializes")
    )
}

/// Error envelope: `{"ok":false,"id":…,"error":{"kind":…,"detail":…}}`
/// plus any extra typed fields (`retry_after_ms`, `executed_insts`).
fn error_reply(id: &Value, kind: &str, detail: &str, extra: &[(&str, Value)]) -> String {
    let mut error = vec![
        ("kind".to_string(), Value::String(kind.to_string())),
        ("detail".to_string(), Value::String(detail.to_string())),
    ];
    error.extend(extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
    let reply = Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("id".to_string(), id.clone()),
        ("error".to_string(), Value::Object(error)),
    ]);
    serde_json::to_string(&reply).expect("reply serializes")
}

/// Runs the server until EOF/SIGTERM/shutdown, then drains. The entry
/// point behind `simrun serve`.
///
/// # Errors
///
/// [`CliError::Usage`]/[`CliError::Config`] for bad flags, and
/// [`CliError::Runtime`] for I/O failures (bind, port file, cache
/// flush).
pub fn run_serve(args: &[String]) -> Result<(), CliError> {
    let opts = ServeOptions::parse(args)?;
    install_sigterm_handler();
    let core = Arc::new(Core::new(opts.clone()));
    match &opts.tcp {
        Some(addr) => serve_tcp(&core, addr),
        None => serve_stdin(&core),
    }?;
    core.finish_drain().map_err(|e| CliError::Runtime(format!("flushing cache state: {e}")))?;
    eprintln!("[serve] drained cleanly");
    Ok(())
}

/// The stdin/stdout NDJSON loop: one request line in, one response
/// line out. EOF or a shutdown request starts the drain.
fn serve_stdin(core: &Arc<Core>) -> Result<(), CliError> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    eprintln!(
        "[serve] ready on stdin (workers {}, queue {})",
        core.opts.workers, core.opts.queue_depth
    );
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError::Runtime(format!("reading stdin: {e}")))?;
        if let Some(response) = core.handle_line(&line) {
            let mut out = stdout.lock();
            writeln!(out, "{response}")
                .and_then(|()| out.flush())
                .map_err(|e| CliError::Runtime(format!("writing stdout: {e}")))?;
        }
        if core.draining() {
            break;
        }
    }
    core.begin_drain("stdin closed");
    Ok(())
}

/// The TCP accept loop: thread per connection, non-blocking accept so
/// SIGTERM is noticed within one poll interval.
fn serve_tcp(core: &Arc<Core>, addr: &str) -> Result<(), CliError> {
    let listener =
        TcpListener::bind(addr).map_err(|e| CliError::Runtime(format!("binding {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::Runtime(format!("resolving bound address: {e}")))?;
    if let Some(port_file) = &core.opts.port_file {
        fsutil::atomic_write(port_file, local.to_string().as_bytes())
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", port_file.display())))?;
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::Runtime(format!("configuring listener: {e}")))?;
    eprintln!(
        "[serve] listening on {local} (workers {}, queue {})",
        core.opts.workers, core.opts.queue_depth
    );
    loop {
        if core.draining() {
            core.begin_drain("signal");
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let core = Arc::clone(core);
                std::thread::spawn(move || {
                    // Contain per-connection panics: one broken client
                    // must never take the server down.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_connection(&core, stream);
                    }));
                    if result.is_err() {
                        eprintln!("[serve] connection handler for {peer} panicked (contained)");
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(CliError::Runtime(format!("accepting connection: {e}"))),
        }
    }
}

/// One client connection: NDJSON request/response until the client
/// hangs up. Slow or dead clients are bounded by the write timeout; a
/// mid-response disconnect closes this connection only.
fn serve_connection(core: &Arc<Core>, stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(core.opts.write_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let Some(response) = core.handle_line(&line) else { continue };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            // Slow-client timeout or mid-response disconnect: the
            // response (and any cache effect) stands; only this
            // connection dies.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_core(workers: usize, queue_depth: usize) -> Core {
        Core::new(ServeOptions {
            tcp: None,
            port_file: None,
            state: None,
            workers,
            queue_depth,
            cache_capacity: 16,
            default_budget: StepBudget::UNLIMITED,
            write_timeout: Duration::from_secs(5),
        })
    }

    fn parsed(response: &str) -> Value {
        serde_json::from_str(response).expect("response must be valid JSON")
    }

    #[test]
    fn query_roundtrip_hits_cache_second_time_byte_identically() {
        let core = test_core(2, 4);
        let line = r#"{"op":"query","id":"q1","app":"sha","scale":0.005,"governor":"kagura"}"#;
        let first = core.handle_line(line).unwrap();
        let v = parsed(&first);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "healthy query must succeed: {first}");
        assert!(v.get("result").and_then(|r| r.get("speedup")).is_some(), "{first}");
        let second = core.handle_line(line).unwrap();
        assert_eq!(first, second, "cache hit must be byte-identical");
        let metrics = parsed(&core.handle_line(r#"{"op":"metrics"}"#).unwrap());
        let registry = metrics.get("metrics").and_then(|m| m.get("registry")).cloned().unwrap();
        let text = serde_json::to_string(&registry).unwrap();
        assert!(text.contains("server_cache_hits"), "{text}");
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error_not_a_wedge() {
        let core = test_core(2, 4);
        let line = r#"{"op":"query","id":"poison","app":"sha","scale":0.01,"max_insts":50}"#;
        let v = parsed(&core.handle_line(line).unwrap());
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        let error = v.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Value::as_str), Some("budget_exhausted"));
        assert!(error.get("executed_insts").and_then(Value::as_u64).is_some());
        // The worker slot must be free again.
        assert_eq!(core.admitted.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn bad_requests_echo_the_id_and_name_the_defect() {
        let core = test_core(1, 1);
        let v = parsed(
            &core.handle_line(r#"{"op":"query","id":42,"app":"sha","governer":"kagura"}"#).unwrap(),
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(42));
        let detail = v.get("error").and_then(|e| e.get("detail")).and_then(Value::as_str).unwrap();
        assert!(detail.contains("`governor`"), "{detail}");
    }

    #[test]
    fn draining_rejects_queries_but_answers_health() {
        let core = test_core(1, 1);
        let v = parsed(&core.handle_line(r#"{"op":"shutdown","id":"s"}"#).unwrap());
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        let v = parsed(
            &core.handle_line(r#"{"op":"query","id":"late","app":"sha","scale":0.005}"#).unwrap(),
        );
        let kind = v.get("error").and_then(|e| e.get("kind")).and_then(Value::as_str).unwrap();
        assert_eq!(kind, "shutting_down");
        let v = parsed(&core.handle_line(r#"{"op":"health"}"#).unwrap());
        let status = v.get("health").and_then(|h| h.get("status")).and_then(Value::as_str).unwrap();
        assert_eq!(status, "draining");
        // Reset the process-wide SIGTERM latch for other tests.
        SIGTERM_RECEIVED.store(false, Ordering::SeqCst);
    }

    #[test]
    fn overload_sheds_with_retry_hint_while_in_flight_completes() {
        use std::sync::mpsc;
        // One worker, zero queue: a single in-flight query saturates
        // admission.
        let core = Arc::new(test_core(1, 0));
        let (tx, rx) = mpsc::channel();
        let slow = Arc::clone(&core);
        let worker = std::thread::spawn(move || {
            let line = r#"{"op":"query","id":"slow","app":"sha","scale":0.01}"#;
            tx.send(()).unwrap();
            slow.handle_line(line).unwrap()
        });
        rx.recv().unwrap();
        // Wait until the slow query actually holds its admission slot.
        while core.admitted.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let v = parsed(
            &core
                .handle_line(r#"{"op":"query","id":"burst","app":"crc32","scale":0.005}"#)
                .unwrap(),
        );
        let error = v.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Value::as_str), Some("overloaded"));
        assert!(error.get("retry_after_ms").and_then(Value::as_u64).is_some());
        let slow_response = worker.join().unwrap();
        assert_eq!(
            parsed(&slow_response).get("ok"),
            Some(&Value::Bool(true)),
            "in-flight request must still complete: {slow_response}"
        );
    }
}
