//! Crash-safe artifact writes.
//!
//! Every report and journal artifact in the harness goes through
//! [`atomic_write`]: the bytes land in a `<final>.tmp` sibling, are
//! fsynced, and only then renamed over the destination. A power cut or
//! SIGKILL at any instant therefore leaves either the old complete file
//! or the new complete file — never a torn half-write — which is what
//! lets `repro --resume` trust any artifact it finds on disk.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Extension used for in-flight writes; `repro --resume` sweeps strays.
pub const TMP_SUFFIX: &str = "tmp";

/// Writes `bytes` to `path` atomically: tmp sibling → fsync → rename.
///
/// # Errors
///
/// Returns any I/O error from creating, writing, syncing or renaming the
/// temporary file. On error the destination is untouched (a stray `.tmp`
/// may remain; resume sweeps them).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Durability before visibility: the rename must never expose a
        // file whose contents are still in the page cache only.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The `<path>.tmp` sibling used by [`atomic_write`].
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".");
    os.push(TMP_SUFFIX);
    os.into()
}

/// Deletes leftover `*.tmp` files under `dir` (non-recursive): the
/// debris of a run killed mid-write. Missing directory is fine.
pub fn sweep_tmp_files(dir: &Path) -> io::Result<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for entry in entries {
        let path = entry?.path();
        if path.is_file() && path.extension().is_some_and(|e| e == TMP_SUFFIX) {
            fs::remove_file(&path)?;
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("kagura_fsutil_atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("report.json");
        atomic_write(&target, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":1}");
        atomic_write(&target, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":2}");
        assert!(!tmp_path(&target).exists(), "tmp sibling must not survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_debris() {
        let dir = std::env::temp_dir().join("kagura_fsutil_sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("good.json"), b"{}").unwrap();
        fs::write(dir.join("torn.json.tmp"), b"{\"incompl").unwrap();
        assert_eq!(sweep_tmp_files(&dir).unwrap(), 1);
        assert!(dir.join("good.json").exists());
        assert!(!dir.join("torn.json.tmp").exists());
        assert_eq!(sweep_tmp_files(&dir.join("missing")).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
