//! Crash-safe artifact writes and the shared append-only journal format.
//!
//! Every report and journal artifact in the harness goes through
//! [`atomic_write`]: the bytes land in a `<final>.tmp` sibling, are
//! fsynced, and only then renamed over the destination. A power cut or
//! SIGKILL at any instant therefore leaves either the old complete file
//! or the new complete file — never a torn half-write — which is what
//! lets `repro --resume` trust any artifact it finds on disk.
//!
//! The harness also keeps three append-only JSONL journals with one
//! common shape — a fingerprint header line followed by one fsynced
//! record per line (`repro`'s run journal, the fleet shard journal, and
//! the `simrun serve` result cache). [`create_journal`] /
//! [`resume_journal`] / [`append_journal_record`] implement that format
//! once: header validation, fingerprint matching, per-record fsync, and
//! the torn-tail contract (a SIGKILL mid-append can tear at most the
//! final line, which resume drops *and truncates off disk* so later
//! appends land on a clean line boundary).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use serde_json::{json, Value};

/// Extension used for in-flight writes; `repro --resume` sweeps strays.
pub const TMP_SUFFIX: &str = "tmp";

/// Writes `bytes` to `path` atomically: tmp sibling → fsync → rename.
///
/// # Errors
///
/// Returns any I/O error from creating, writing, syncing or renaming the
/// temporary file. On error the destination is untouched (a stray `.tmp`
/// may remain; resume sweeps them).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Durability before visibility: the rename must never expose a
        // file whose contents are still in the page cache only.
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The `<path>.tmp` sibling used by [`atomic_write`].
fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".");
    os.push(TMP_SUFFIX);
    os.into()
}

/// Deletes leftover `*.tmp` files under `dir` (non-recursive): the
/// debris of a run killed mid-write. Missing directory is fine.
pub fn sweep_tmp_files(dir: &Path) -> io::Result<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for entry in entries {
        let path = entry?.path();
        if path.is_file() && path.extension().is_some_and(|e| e == TMP_SUFFIX) {
            fs::remove_file(&path)?;
            swept += 1;
        }
    }
    Ok(swept)
}

/// Identity of one journal flavour: the `journal`/`version` pair its
/// header must carry, plus the flavour-specific wording woven into
/// diagnostics (so a run journal still says "its experiment will
/// re-run" and a fleet journal "its shard re-runs").
#[derive(Debug, Clone, Copy)]
pub struct JournalFormat {
    /// Header `journal` field (e.g. `"kagura-repro"`).
    pub name: &'static str,
    /// Header `version` field; a mismatch is treated as a foreign file.
    pub version: u64,
    /// Tag for stderr warnings, e.g. `"resume"` → `[resume] …`.
    pub log_tag: &'static str,
    /// What happens to the work carried by a dropped torn final line.
    pub torn_note: &'static str,
    /// Appended to the fingerprint-mismatch error: how the user gets
    /// back to a resumable state.
    pub mismatch_hint: &'static str,
}

/// Creates (truncating) a journal at `path` and writes its fingerprint
/// header, fsynced. The returned handle is positioned for appends.
///
/// # Errors
///
/// Returns any I/O error from creating, writing or syncing the file.
pub fn create_journal(path: &Path, fmt: &JournalFormat, fingerprint: &Value) -> io::Result<File> {
    let mut file = File::create(path)?;
    let header = json!({
        "journal": fmt.name,
        "version": fmt.version,
        "fingerprint": fingerprint.clone(),
    });
    writeln!(file, "{}", serde_json::to_string(&header).expect("serializable"))?;
    file.sync_data()?;
    Ok(file)
}

/// Reopens the journal at `path` for appending, returning the complete
/// records after the header (parsed, in file order). A torn final line
/// — the only line a SIGKILL mid-append can tear, because every record
/// is fsynced before the writer returns — is dropped *and truncated off
/// disk*, so the next append starts on a clean line boundary instead of
/// gluing onto the partial record.
///
/// Returns `Ok(None)` when no journal exists (callers degrade to
/// [`create_journal`]).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when the header is
/// unreadable, names a different format, or fingerprints a different
/// configuration — and on corruption *before* the final line, which the
/// append-only fsync discipline makes impossible short of external
/// tampering (silent data loss would be worse than a hard error).
pub fn resume_journal(
    path: &Path,
    fmt: &JournalFormat,
    fingerprint: &Value,
) -> io::Result<Option<(File, Vec<Value>)>> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut pieces = text.split_inclusive('\n');
    let header_piece = pieces.next().unwrap_or("");
    let header: Value = Some(header_piece)
        .filter(|p| p.ends_with('\n'))
        .and_then(|p| serde_json::from_str(p.trim_end()).ok())
        .ok_or_else(|| bad(format!("{}: missing or corrupt journal header", path.display())))?;
    if header.get("journal").and_then(Value::as_str) != Some(fmt.name)
        || header.get("version").and_then(Value::as_u64) != Some(fmt.version)
    {
        return Err(bad(format!(
            "{}: not a {} v{} journal",
            path.display(),
            fmt.name,
            fmt.version
        )));
    }
    let found = header.get("fingerprint").cloned().unwrap_or(Value::Null);
    if found != *fingerprint {
        let show = |v: &Value| serde_json::to_string(v).unwrap_or_else(|_| "?".into());
        return Err(bad(format!(
            "{}: journal fingerprint does not match this invocation \
             (journal {}, requested {}); {}",
            path.display(),
            show(&found),
            show(fingerprint),
            fmt.mismatch_hint,
        )));
    }
    let entries: Vec<&str> = pieces.collect();
    let mut records = Vec::with_capacity(entries.len());
    // Byte length of the journal's intact prefix — everything up to and
    // including the last record that both parses and carries its
    // trailing newline.
    let mut valid_len = header_piece.len() as u64;
    for (i, piece) in entries.iter().enumerate() {
        match serde_json::from_str(piece.trim_end()) {
            Ok(record) if piece.ends_with('\n') => {
                records.push(record);
                valid_len += piece.len() as u64;
            }
            // Only the final line can legitimately be torn (the journal
            // is append-only and fsynced per record).
            res if i + 1 == entries.len() => {
                let detail = match res {
                    Err(e) => e.to_string(),
                    Ok(_) => "record written without its newline".into(),
                };
                eprintln!(
                    "[{}] dropping torn final journal line ({detail}); {}",
                    fmt.log_tag, fmt.torn_note
                );
            }
            Err(e) => {
                return Err(bad(format!(
                    "{}: corrupt journal line {}: {e}",
                    path.display(),
                    i + 2
                )));
            }
            Ok(_) => unreachable!("only the final split_inclusive piece can lack a newline"),
        }
    }
    let file = OpenOptions::new().append(true).open(path)?;
    if valid_len < text.len() as u64 {
        // Drop the torn tail from disk too: with O_APPEND the next
        // record would otherwise be glued onto the partial line,
        // corrupting the journal for every later resume.
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    Ok(Some((file, records)))
}

/// Appends one record line and fsyncs: once this returns, the record
/// survives any kill.
///
/// # Errors
///
/// Returns any I/O error from the append or sync.
pub fn append_journal_record(file: &mut File, record: &Value) -> io::Result<()> {
    writeln!(file, "{}", serde_json::to_string(record).expect("serializable"))?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("kagura_fsutil_atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("report.json");
        atomic_write(&target, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":1}");
        atomic_write(&target, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":2}");
        assert!(!tmp_path(&target).exists(), "tmp sibling must not survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    const FMT: JournalFormat = JournalFormat {
        name: "kagura-test",
        version: 7,
        log_tag: "test",
        torn_note: "its record re-runs",
        mismatch_hint: "start fresh",
    };

    #[test]
    fn journal_helper_round_trips_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join("kagura_fsutil_journal");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // u64 literal: the header round-trip parses positive integers
        // back as u64, and fingerprint equality is exact.
        let fp = json!({"k": 1u64});
        {
            let mut f = create_journal(&path, &FMT, &fp).unwrap();
            append_journal_record(&mut f, &json!({"id": "a"})).unwrap();
            append_journal_record(&mut f, &json!({"id": "b"})).unwrap();
        }
        // Tear the tail the way a SIGKILL mid-append would.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"id\":\"c").unwrap();
        drop(f);
        let (mut f, records) = resume_journal(&path, &FMT, &fp).unwrap().expect("journal exists");
        assert_eq!(records, vec![json!({"id": "a"}), json!({"id": "b"})]);
        // The torn bytes must be gone from disk: a fresh append then a
        // second resume sees three clean records.
        append_journal_record(&mut f, &json!({"id": "d"})).unwrap();
        drop(f);
        let (_, records) = resume_journal(&path, &FMT, &fp).unwrap().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], json!({"id": "d"}));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_helper_rejects_foreign_headers_and_fingerprints() {
        let dir = std::env::temp_dir().join("kagura_fsutil_journal_reject");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        assert!(resume_journal(&path, &FMT, &json!({})).unwrap().is_none(), "missing → None");
        create_journal(&path, &FMT, &json!({"k": 1u64})).unwrap();
        let err = resume_journal(&path, &FMT, &json!({"k": 2u64})).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert!(err.to_string().contains("start fresh"), "hint must survive: {err}");
        let other = JournalFormat { version: 8, ..FMT };
        let err = resume_journal(&path, &other, &json!({"k": 1u64})).unwrap_err();
        assert!(err.to_string().contains("not a kagura-test v8 journal"), "{err}");
        // Corruption before the final line is a hard error.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, format!("{text}not json\n{{\"id\":\"x\"}}\n")).unwrap();
        assert!(resume_journal(&path, &FMT, &json!({"k": 1u64})).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_debris() {
        let dir = std::env::temp_dir().join("kagura_fsutil_sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("good.json"), b"{}").unwrap();
        fs::write(dir.join("torn.json.tmp"), b"{\"incompl").unwrap();
        assert_eq!(sweep_tmp_files(&dir).unwrap(), 1);
        assert!(dir.join("good.json").exists());
        assert!(!dir.join("torn.json.tmp").exists());
        assert_eq!(sweep_tmp_files(&dir.join("missing")).unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
