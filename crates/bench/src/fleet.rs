//! Fleet campaign engine: constant-memory population statistics over
//! large cell populations, sharded execution with a crash-safe shard
//! journal, and the `fleet.json`/`fleet.jsonl` report schema.
//!
//! A campaign samples `population` deployment cells (see
//! [`ehs_sim::fleet::FleetSpec`]), runs each cell's baseline/Kagura job
//! pair, and streams the per-cell metrics — speedup, forward progress,
//! compression-waste fraction, ledger violations — into a
//! [`FleetAggregate`]: per stratum, one fixed-bucket [`Histogram`] plus
//! one bottom-k [`Reservoir`] per metric. Memory is O(strata × metrics
//! × reservoir capacity) whether the population is 10³ or 10⁶ cells.
//!
//! Every piece of the aggregate merges *exactly* — integer bucket
//! counts, [`FixedSum`] fixed-point totals, partition-invariant bottom-k
//! sketches — so folding per-shard aggregates in any grouping produces
//! bit-identical state to single-stream aggregation. That is the
//! engine's contract: reports are byte-identical at any `--jobs` value
//! and any `--fleet-shard` size, and a run SIGKILLed mid-campaign
//! resumes through [`FleetJournal`] to byte-identical output.
//!
//! [`FixedSum`]: ehs_telemetry::FixedSum

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

use ehs_sim::fleet::{FleetCell, FleetSpec};
use ehs_sim::SimStats;
use ehs_telemetry::{quantile_of_sorted, Histogram, Reservoir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

/// Campaign parameters carried by the experiment context
/// (`repro fleet --fleet-size N --fleet-seed S --fleet-shard K`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetParams {
    /// Number of cells in the population.
    pub population: u64,
    /// Campaign seed (drives sampling and reservoir priorities).
    pub seed: u64,
    /// Cells per execution shard; bounds peak memory and the work lost
    /// to a mid-shard kill.
    pub shard_size: u64,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams { population: 180, seed: 0xF1EE7, shard_size: 64 }
    }
}

/// Samples retained per reservoir: enough for stable p99 and bootstrap
/// CIs, small enough that a campaign's whole aggregate stays ~100 KiB.
pub const RESERVOIR_CAPACITY: usize = 512;

/// Bootstrap resamples behind each 95 % confidence interval.
pub const BOOTSTRAP_RESAMPLES: usize = 200;

/// The per-cell population metrics and their histogram bucket bounds.
pub const METRICS: &[(&str, &[f64])] = &[
    ("speedup", &[0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 2.0]),
    ("forward_progress", &[0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99]),
    ("waste_fraction", &[0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2]),
    ("ledger_violations", &[0.5, 1.5, 2.5, 5.5, 10.5, 100.5]),
];

/// FNV-1a 64-bit hash: a process-independent string hash for deriving
/// reservoir seeds (std's `DefaultHasher` is randomized per process,
/// which would break cross-process byte-identity).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The per-cell metric values for one completed baseline/Kagura pair,
/// index-aligned with [`METRICS`]. `None` means undefined for this
/// cell (e.g. speedup when either run hit its budget).
pub fn cell_metrics(baseline: &SimStats, kagura: &SimStats) -> [Option<f64>; 4] {
    let speedup = kagura.try_speedup_over(baseline);
    let progress = (kagura.executed_insts > 0)
        .then(|| kagura.committed_insts as f64 / kagura.executed_insts as f64);
    let total_pj = kagura.total_energy().picojoules();
    let waste = (total_pj > 0.0).then(|| {
        use ehs_energy::EnergyCategory::{Compress, Decompress};
        (kagura.breakdown[Compress].picojoules() + kagura.breakdown[Decompress].picojoules())
            / total_pj
    });
    [speedup, progress, waste, Some(kagura.ledger_violations as f64)]
}

/// One metric's constant-memory aggregate: exact bucket counts plus a
/// mergeable value sketch for quantiles and bootstrap CIs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAgg {
    /// Fixed-bucket histogram (exact, mergeable counts).
    pub hist: Histogram,
    /// Bottom-k sample keyed by cell index (partition-invariant).
    pub sample: Reservoir,
}

impl MetricAgg {
    fn new(campaign_seed: u64, stratum: &str, metric: &str, bounds: &[f64]) -> Self {
        // Distinct deterministic seed per (stratum, metric) so sketches
        // are independent but reproducible across processes.
        let seed = campaign_seed ^ fnv1a(&format!("{stratum}/{metric}"));
        MetricAgg {
            hist: Histogram::with_bounds(bounds),
            sample: Reservoir::new(seed, RESERVOIR_CAPACITY),
        }
    }

    fn observe(&mut self, key: u64, v: f64) {
        self.hist.observe(v);
        self.sample.offer(key, v);
    }

    fn merge(&mut self, other: &MetricAgg) -> Result<(), String> {
        self.hist.merge(&other.hist)?;
        self.sample.merge(&other.sample)
    }

    fn to_exact_json(&self) -> Value {
        json!({ "hist": self.hist.to_exact_json(), "sample": self.sample.to_exact_json() })
    }

    fn from_exact_json(v: &Value) -> Result<Self, String> {
        let part = |k: &str| v.get(k).ok_or_else(|| format!("metric field `{k}` missing"));
        Ok(MetricAgg {
            hist: Histogram::from_exact_json(part("hist")?)?,
            sample: Reservoir::from_exact_json(part("sample")?)?,
        })
    }
}

/// One stratum's aggregate: cell accounting plus every metric.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumAgg {
    /// Cells allocated to this stratum that finished (either way).
    pub cells: u64,
    /// Cells whose baseline or Kagura job failed (panic/timeout/...).
    pub failed: u64,
    /// Cells where at least one run hit its budget before completing.
    pub incomplete: u64,
    /// Per-metric aggregates, index-aligned with [`METRICS`].
    pub metrics: Vec<MetricAgg>,
}

impl StratumAgg {
    fn new(campaign_seed: u64, stratum: &str) -> Self {
        StratumAgg {
            cells: 0,
            failed: 0,
            incomplete: 0,
            metrics: METRICS
                .iter()
                .map(|&(name, bounds)| MetricAgg::new(campaign_seed, stratum, name, bounds))
                .collect(),
        }
    }

    fn merge(&mut self, other: &StratumAgg) -> Result<(), String> {
        if self.metrics.len() != other.metrics.len() {
            return Err("stratum metric count mismatch".into());
        }
        self.cells += other.cells;
        self.failed += other.failed;
        self.incomplete += other.incomplete;
        for (m, o) in self.metrics.iter_mut().zip(&other.metrics) {
            m.merge(o)?;
        }
        Ok(())
    }

    fn to_exact_json(&self) -> Value {
        json!({
            "cells": self.cells,
            "failed": self.failed,
            "incomplete": self.incomplete,
            "metrics": self.metrics.iter().map(MetricAgg::to_exact_json).collect::<Vec<_>>(),
        })
    }

    fn from_exact_json(v: &Value) -> Result<Self, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("stratum field `{k}` is not a u64"))
        };
        let metrics = v
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or_else(|| "stratum field `metrics` is not an array".to_string())?
            .iter()
            .map(MetricAgg::from_exact_json)
            .collect::<Result<Vec<_>, _>>()?;
        if metrics.len() != METRICS.len() {
            return Err(format!(
                "stratum holds {} metrics, expected {}",
                metrics.len(),
                METRICS.len()
            ));
        }
        Ok(StratumAgg {
            cells: u("cells")?,
            failed: u("failed")?,
            incomplete: u("incomplete")?,
            metrics,
        })
    }
}

/// The whole campaign's constant-memory aggregate: one [`StratumAgg`]
/// per `(design, trace)` stratum plus the population-wide `overall`.
///
/// Merging is exact and associative in every component, so any
/// sharding of the population folds to bit-identical state.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAggregate {
    campaign_seed: u64,
    /// Stratum label → aggregate, in [`FleetSpec::stratum_labels`] order.
    pub strata: Vec<(String, StratumAgg)>,
    /// Population-wide aggregate across all strata.
    pub overall: StratumAgg,
}

impl FleetAggregate {
    /// An empty aggregate for a campaign seeded with `campaign_seed`,
    /// with every stratum present (so empty strata still report).
    pub fn new(campaign_seed: u64) -> Self {
        FleetAggregate {
            campaign_seed,
            strata: FleetSpec::stratum_labels()
                .into_iter()
                .map(|label| {
                    let agg = StratumAgg::new(campaign_seed, &label);
                    (label, agg)
                })
                .collect(),
            overall: StratumAgg::new(campaign_seed, "overall"),
        }
    }

    fn stratum_mut(&mut self, label: &str) -> &mut StratumAgg {
        let at = self
            .strata
            .iter()
            .position(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("unknown stratum {label:?}"));
        &mut self.strata[at].1
    }

    /// Folds one completed cell (both jobs returned stats) in.
    pub fn observe(&mut self, cell: &FleetCell, baseline: &SimStats, kagura: &SimStats) {
        fn fold(agg: &mut StratumAgg, key: u64, metrics: &[Option<f64>; 4], incomplete: u64) {
            agg.cells += 1;
            agg.incomplete += incomplete;
            for (m, v) in agg.metrics.iter_mut().zip(metrics) {
                if let Some(v) = v {
                    m.observe(key, *v);
                }
            }
        }
        let metrics = cell_metrics(baseline, kagura);
        let incomplete = u64::from(!baseline.completed || !kagura.completed);
        fold(self.stratum_mut(&cell.stratum()), cell.index, &metrics, incomplete);
        fold(&mut self.overall, cell.index, &metrics, incomplete);
    }

    /// Counts one cell whose baseline or Kagura job failed outright.
    pub fn record_failed(&mut self, cell: &FleetCell) {
        let s = self.stratum_mut(&cell.stratum());
        s.cells += 1;
        s.failed += 1;
        self.overall.cells += 1;
        self.overall.failed += 1;
    }

    /// Folds another shard's aggregate in — exactly associative.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the aggregates come from different campaigns
    /// (seed or stratum layout mismatch).
    pub fn merge(&mut self, other: &FleetAggregate) -> Result<(), String> {
        if self.campaign_seed != other.campaign_seed {
            return Err(format!(
                "aggregate campaign seed mismatch: {} vs {}",
                self.campaign_seed, other.campaign_seed
            ));
        }
        if self.strata.len() != other.strata.len() {
            return Err("aggregate stratum layout mismatch".into());
        }
        for ((la, a), (lb, b)) in self.strata.iter_mut().zip(&other.strata) {
            if la != lb {
                return Err(format!("stratum order mismatch: {la:?} vs {lb:?}"));
            }
            a.merge(b)?;
        }
        self.overall.merge(&other.overall)
    }

    /// Lossless serialization for the shard journal; round-trips
    /// bit-for-bit through [`FleetAggregate::from_exact_json`].
    pub fn to_exact_json(&self) -> Value {
        json!({
            "campaign_seed": self.campaign_seed,
            "strata": self
                .strata
                .iter()
                .map(|(l, a)| json!({ "stratum": l, "agg": a.to_exact_json() }))
                .collect::<Vec<_>>(),
            "overall": self.overall.to_exact_json(),
        })
    }

    /// Rebuilds an aggregate journaled by [`FleetAggregate::to_exact_json`].
    ///
    /// # Errors
    ///
    /// Returns `Err` naming the offending field on any schema mismatch.
    pub fn from_exact_json(v: &Value) -> Result<Self, String> {
        let campaign_seed = v
            .get("campaign_seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| "aggregate field `campaign_seed` is not a u64".to_string())?;
        let strata = v
            .get("strata")
            .and_then(Value::as_array)
            .ok_or_else(|| "aggregate field `strata` is not an array".to_string())?
            .iter()
            .map(|s| {
                let label = s
                    .get("stratum")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "stratum label missing".to_string())?;
                let agg = StratumAgg::from_exact_json(
                    s.get("agg").ok_or_else(|| format!("stratum {label:?} has no `agg`"))?,
                )?;
                Ok((label.to_string(), agg))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let overall = StratumAgg::from_exact_json(
            v.get("overall").ok_or_else(|| "aggregate field `overall` missing".to_string())?,
        )?;
        Ok(FleetAggregate { campaign_seed, strata, overall })
    }
}

/// 95 % bootstrap confidence interval for the mean of `values`:
/// [`BOOTSTRAP_RESAMPLES`] seeded resamples with replacement, then the
/// 2.5th/97.5th percentiles of the resample means. `None` when empty.
///
/// Fully deterministic in `(values, seed)` — the StdRng stream is fixed
/// by the campaign seed, never by process state.
pub fn bootstrap_mean_ci(values: &[f64], seed: u64) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = values.len();
    let mut means: Vec<f64> = (0..BOOTSTRAP_RESAMPLES)
        .map(|_| {
            let sum: f64 = (0..n)
                .map(|_| {
                    let at = ((rng.gen::<f64>() * n as f64) as usize).min(n - 1);
                    values[at]
                })
                .sum();
            sum / n as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    Some((quantile_of_sorted(&means, 0.025), quantile_of_sorted(&means, 0.975)))
}

// ---------------------------------------------------------------------------
// Shard journal
// ---------------------------------------------------------------------------

/// Shard journal file name inside the results directory.
pub const FLEET_JOURNAL_FILE: &str = "fleet_journal.jsonl";

/// Header format shared with the other journals via
/// [`fsutil::resume_journal`](crate::fsutil::resume_journal).
const FORMAT: crate::fsutil::JournalFormat = crate::fsutil::JournalFormat {
    name: "kagura-fleet",
    version: 1,
    log_tag: "fleet",
    torn_note: "its shard re-runs",
    mismatch_hint: "resume with the original fleet/scale flags or start a fresh --out",
};

/// Append-only journal of completed campaign shards, mirroring the
/// driver's run journal: a fingerprint header, one fsynced line per
/// shard carrying the shard's exact-JSON aggregate and failure records.
/// A SIGKILL mid-append tears at most the final line, which
/// [`FleetJournal::resume`] drops (that shard re-runs).
#[derive(Debug)]
pub struct FleetJournal {
    path: PathBuf,
    file: File,
    /// Completed shard index → (exact aggregate JSON, failure records).
    shards: BTreeMap<u64, (Value, Vec<Value>)>,
}

impl FleetJournal {
    /// Starts a fresh shard journal in `out_dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the journal.
    pub fn create(out_dir: &Path, fingerprint: Value) -> io::Result<Self> {
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(FLEET_JOURNAL_FILE);
        let file = crate::fsutil::create_journal(&path, &FORMAT, &fingerprint)?;
        Ok(FleetJournal { path, file, shards: BTreeMap::new() })
    }

    /// Reopens an existing shard journal, returning the completed
    /// shards. A missing journal degrades to [`FleetJournal::create`];
    /// a torn final line is dropped.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] when the header is
    /// unreadable or fingerprints a different campaign configuration.
    pub fn resume(out_dir: &Path, fingerprint: Value) -> io::Result<Self> {
        let path = out_dir.join(FLEET_JOURNAL_FILE);
        let Some((file, records)) = crate::fsutil::resume_journal(&path, &FORMAT, &fingerprint)?
        else {
            return Self::create(out_dir, fingerprint);
        };
        let mut shards = BTreeMap::new();
        for (i, record) in records.iter().enumerate() {
            let shard = record.get("shard").and_then(Value::as_u64);
            let agg = record.get("agg").cloned();
            let failures = record.get("failures").and_then(Value::as_array).map(<[Value]>::to_vec);
            match (shard, agg, failures) {
                (Some(s), Some(a), Some(f)) => {
                    shards.insert(s, (a, f));
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: journal line {} is not a shard record", path.display(), i + 2),
                    ));
                }
            }
        }
        Ok(FleetJournal { path, file, shards })
    }

    /// The journaled (aggregate, failures) for `shard`, if completed.
    pub fn shard(&self, shard: u64) -> Option<&(Value, Vec<Value>)> {
        self.shards.get(&shard)
    }

    /// Count of completed shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when no shard has completed yet.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Journals one completed shard, fsyncing before returning: once
    /// this call comes back the shard's work survives any kill.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the append or sync.
    pub fn record(&mut self, shard: u64, agg: Value, failures: Vec<Value>) -> io::Result<()> {
        let record = json!({ "shard": shard, "agg": agg.clone(), "failures": failures.clone() });
        crate::fsutil::append_journal_record(&mut self.file, &record)?;
        self.shards.insert(shard, (agg, failures));
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// One metric's row in the human/machine report.
fn metric_report(name: &str, agg: &MetricAgg, campaign_seed: u64, stratum: &str) -> Value {
    let values = agg.sample.sorted_values();
    let ci_seed = campaign_seed ^ fnv1a(&format!("ci/{stratum}/{name}"));
    let ci = bootstrap_mean_ci(&values, ci_seed);
    let count = agg.hist.count();
    let opt = |v: f64| if count == 0 { Value::Null } else { json!(v) };
    json!({
        "metric": name,
        "count": count,
        "mean": opt(agg.sample.mean()),
        "min": opt(agg.sample.min()),
        "max": opt(agg.sample.max()),
        "p10": opt(agg.hist.percentile(0.10)),
        "p50": opt(agg.hist.percentile(0.50)),
        "p90": opt(agg.hist.percentile(0.90)),
        "p99": opt(agg.hist.percentile(0.99)),
        "ci_lo": ci.map_or(Value::Null, |(lo, _)| json!(lo)),
        "ci_hi": ci.map_or(Value::Null, |(_, hi)| json!(hi)),
        "hist_counts": agg.hist.buckets().iter().map(|&(_, c)| c).collect::<Vec<_>>(),
    })
}

fn stratum_report(label: &str, agg: &StratumAgg, campaign_seed: u64) -> Value {
    json!({
        "stratum": label,
        "cells": agg.cells,
        "failed": agg.failed,
        "incomplete": agg.incomplete,
        "metrics": METRICS
            .iter()
            .zip(&agg.metrics)
            .map(|(&(name, _), m)| metric_report(name, m, campaign_seed, label))
            .collect::<Vec<_>>(),
    })
}

/// Builds the campaign report. Deliberately carries *no* trace of how
/// the run was sharded or parallelized — the report is a pure function
/// of `(population, seed, scale, audit_strict)`, which is what the CI
/// gate diffs across shard counts.
pub fn report_json(params: &FleetParams, spec: &FleetSpec, agg: &FleetAggregate) -> Value {
    let mut strata: Vec<Value> =
        agg.strata.iter().map(|(label, s)| stratum_report(label, s, params.seed)).collect();
    strata.push(stratum_report("overall", &agg.overall, params.seed));
    json!({
        "experiment": "fleet",
        "population": params.population,
        "seed": params.seed,
        "scale": spec.scale,
        "audit_strict": spec.audit_strict,
        "metrics": METRICS.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
        "strata": strata,
    })
}

/// Renders the report as a JSONL stream: a header line, one line per
/// stratum (population-wide `overall` last), and a summary line.
pub fn report_jsonl(report: &Value) -> String {
    let mut out = String::new();
    let line = |out: &mut String, v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("serializable"));
        out.push('\n');
    };
    line(
        &mut out,
        json!({
            "kind": "header",
            "population": report.get("population").cloned().unwrap_or(Value::Null),
            "seed": report.get("seed").cloned().unwrap_or(Value::Null),
            "scale": report.get("scale").cloned().unwrap_or(Value::Null),
        }),
    );
    let strata: Vec<Value> =
        report.get("strata").and_then(Value::as_array).map(<[Value]>::to_vec).unwrap_or_default();
    let (mut cells, mut failed) = (0u64, 0u64);
    for s in &strata {
        if s.get("stratum").and_then(Value::as_str) != Some("overall") {
            cells += s.get("cells").and_then(Value::as_u64).unwrap_or(0);
            failed += s.get("failed").and_then(Value::as_u64).unwrap_or(0);
        }
        let mut row = vec![("kind".to_string(), json!("stratum"))];
        if let Value::Object(fields) = s {
            row.extend(fields.iter().cloned());
        }
        line(&mut out, Value::Object(row));
    }
    line(&mut out, json!({ "kind": "summary", "cells": cells, "failed": failed }));
    out
}

/// One metric parsed back from the JSONL report:
/// `(count, mean, p50, p99, bootstrap CI)` — `None` when the stratum
/// observed no defined value for that statistic.
pub type ParsedMetric = (u64, Option<f64>, Option<f64>, Option<f64>, Option<(f64, f64)>);

/// One stratum parsed back from the JSONL report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStratumRow {
    /// Stratum label (`Design/Trace`, or `overall`).
    pub stratum: String,
    /// Cell accounting.
    pub cells: u64,
    /// Failed-cell count.
    pub failed: u64,
    /// Metric name → parsed statistics.
    pub metrics: BTreeMap<String, ParsedMetric>,
}

/// The JSONL report parsed back strictly.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Campaign population.
    pub population: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Stratum rows in stream order (`overall` last).
    pub strata: Vec<FleetStratumRow>,
    /// Summary cell count (excludes the `overall` double-count).
    pub cells: u64,
}

/// Parses a `fleet.jsonl` stream strictly: every line must be valid
/// JSON of the expected kind with every required field, or the parse
/// fails with a `file:line` diagnostic naming the offending field —
/// the same contract the cachescope streams honour.
///
/// # Errors
///
/// Returns a `file:line`-prefixed message on any malformed line.
pub fn parse_fleet_file(path: &Path) -> Result<FleetReport, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let ctx = |i: usize, msg: String| format!("{}:{}: {msg}", path.display(), i + 1);
    let mut header: Option<(u64, u64)> = None;
    let mut strata = Vec::new();
    let mut summary: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line).map_err(|e| ctx(i, format!("bad JSON: {e}")))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx(i, "missing field `kind`".into()))?;
        let u = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| ctx(i, format!("field `{k}` is not a u64")))
        };
        match kind {
            "header" => {
                if i != 0 {
                    return Err(ctx(i, "header after first line".into()));
                }
                header = Some((u("population")?, u("seed")?));
            }
            "stratum" => {
                let label = v
                    .get("stratum")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx(i, "field `stratum` is not a string".into()))?;
                let mut metrics = BTreeMap::new();
                let rows = v
                    .get("metrics")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ctx(i, "field `metrics` is not an array".into()))?;
                for m in rows {
                    let name = m
                        .get("metric")
                        .and_then(Value::as_str)
                        .ok_or_else(|| ctx(i, "metric row missing `metric`".into()))?;
                    let count = m
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| ctx(i, format!("metric {name:?} missing `count`")))?;
                    let f = |k: &str| -> Result<Option<f64>, String> {
                        match m.get(k) {
                            Some(Value::Null) => Ok(None),
                            Some(x) => x.as_f64().map(Some).ok_or_else(|| {
                                ctx(i, format!("metric {name:?} field `{k}` is not a number"))
                            }),
                            None => Err(ctx(i, format!("metric {name:?} missing `{k}`"))),
                        }
                    };
                    let ci = match (f("ci_lo")?, f("ci_hi")?) {
                        (Some(lo), Some(hi)) => Some((lo, hi)),
                        _ => None,
                    };
                    metrics.insert(name.to_string(), (count, f("mean")?, f("p50")?, f("p99")?, ci));
                }
                strata.push(FleetStratumRow {
                    stratum: label.to_string(),
                    cells: u("cells")?,
                    failed: u("failed")?,
                    metrics,
                });
            }
            "summary" => {
                if summary.is_some() {
                    return Err(ctx(i, "duplicate summary line".into()));
                }
                summary = Some(u("cells")?);
            }
            other => return Err(ctx(i, format!("unknown line kind {other:?}"))),
        }
    }
    let (population, seed) =
        header.ok_or_else(|| format!("{}: missing header line", path.display()))?;
    let cells = summary.ok_or_else(|| format!("{}: missing summary line", path.display()))?;
    if strata.last().map(|s| s.stratum.as_str()) != Some("overall") {
        return Err(format!("{}: stream must end its strata with `overall`", path.display()));
    }
    Ok(FleetReport { population, seed, strata, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_sim::StepBudget;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn spec(population: u64) -> FleetSpec {
        FleetSpec {
            population,
            seed: 7,
            scale: 0.01,
            budget: StepBudget::UNLIMITED,
            audit_strict: false,
        }
    }

    fn fake_stats(completed: bool, secs: f64, violations: u64) -> SimStats {
        use ehs_model::SimTime;
        SimStats {
            completed,
            sim_time: SimTime::from_seconds(secs),
            committed_insts: 900,
            executed_insts: 1000,
            ledger_violations: violations,
            ..SimStats::default()
        }
    }

    /// A deterministic synthetic population folded through the real
    /// aggregation path, no simulation needed.
    fn observe_synthetic(agg: &mut FleetAggregate, s: &FleetSpec, range: std::ops::Range<u64>) {
        for i in range {
            let cell = s.cell(i);
            if i % 17 == 0 {
                agg.record_failed(&cell);
            } else {
                let base = fake_stats(true, 1.0 + (i % 7) as f64 * 0.01, 0);
                let kag = fake_stats(i % 13 != 0, 0.9 + (i % 5) as f64 * 0.02, i % 3);
                agg.observe(&cell, &base, &kag);
            }
        }
    }

    #[test]
    fn cell_metrics_definitions() {
        let base = fake_stats(true, 2.0, 0);
        let kag = fake_stats(true, 1.0, 4);
        let [speedup, progress, waste, violations] = cell_metrics(&base, &kag);
        assert_eq!(speedup, Some(2.0));
        assert_eq!(progress, Some(0.9));
        assert_eq!(waste, None, "zero total energy leaves waste undefined");
        assert_eq!(violations, Some(4.0));
        // An incomplete Kagura run has no speedup but still reports
        // progress and violations.
        let truncated = fake_stats(false, 1.0, 1);
        let [s2, p2, _, v2] = cell_metrics(&base, &truncated);
        assert_eq!(s2, None);
        assert_eq!(p2, Some(0.9));
        assert_eq!(v2, Some(1.0));
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_single_stream() {
        let s = spec(90);
        let mut whole = FleetAggregate::new(s.seed);
        observe_synthetic(&mut whole, &s, 0..90);
        // Three shards of different sizes, merged out of order.
        let mut parts = Vec::new();
        for range in [0..40u64, 40..63, 63..90] {
            let mut part = FleetAggregate::new(s.seed);
            observe_synthetic(&mut part, &s, range);
            parts.push(part);
        }
        let mut folded = FleetAggregate::new(s.seed);
        folded.merge(&parts[2]).unwrap();
        folded.merge(&parts[0]).unwrap();
        folded.merge(&parts[1]).unwrap();
        assert_eq!(folded, whole);
        // And through the journal's exact-JSON round trip.
        let back = FleetAggregate::from_exact_json(&whole.to_exact_json()).unwrap();
        assert_eq!(back, whole);
    }

    #[test]
    fn merge_rejects_cross_campaign_aggregates() {
        let mut a = FleetAggregate::new(1);
        let b = FleetAggregate::new(2);
        assert!(a.merge(&b).unwrap_err().contains("seed mismatch"));
    }

    #[test]
    fn bootstrap_ci_is_deterministic_and_brackets_the_mean() {
        let values: Vec<f64> = (0..200).map(|k| 1.0 + (k as f64).sin() * 0.1).collect();
        let ci = bootstrap_mean_ci(&values, 42).unwrap();
        assert_eq!(ci, bootstrap_mean_ci(&values, 42).unwrap(), "seeded CI must be stable");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(ci.0 <= mean && mean <= ci.1, "CI {ci:?} must bracket mean {mean}");
        assert!(ci.1 - ci.0 < 0.1, "CI {ci:?} implausibly wide");
        assert_eq!(bootstrap_mean_ci(&[], 42), None);
    }

    #[test]
    fn journal_round_trips_shards_and_rejects_mismatched_fingerprints() {
        let dir = std::env::temp_dir().join("kagura_fleet_journal_test");
        let _ = fs::remove_dir_all(&dir);
        // u64 literals: the journal's JSON round-trip parses positive
        // integers back as u64, and fingerprint equality is exact.
        let fp = json!({"population": 20u64, "seed": 7u64});
        let s = spec(20);
        let mut shard0 = FleetAggregate::new(s.seed);
        observe_synthetic(&mut shard0, &s, 0..10);
        {
            let mut j = FleetJournal::create(&dir, fp.clone()).unwrap();
            j.record(0, shard0.to_exact_json(), vec![json!({"cell": 0})]).unwrap();
        }
        // Torn final line (killed mid-append) is dropped.
        let mut f = OpenOptions::new().append(true).open(dir.join(FLEET_JOURNAL_FILE)).unwrap();
        f.write_all(b"{\"shard\":1,\"agg").unwrap();
        drop(f);
        let mut j = FleetJournal::resume(&dir, fp.clone()).unwrap();
        assert_eq!(j.len(), 1);
        let (agg, failures) = j.shard(0).unwrap();
        assert_eq!(FleetAggregate::from_exact_json(agg).unwrap(), shard0);
        assert_eq!(failures.len(), 1);
        assert!(j.shard(1).is_none(), "torn shard must re-run");
        // Appending after the torn tail must land on a clean line
        // boundary (the tail is truncated off disk), so a second resume
        // still reads every record.
        let mut shard1 = FleetAggregate::new(s.seed);
        observe_synthetic(&mut shard1, &s, 10..20);
        j.record(1, shard1.to_exact_json(), vec![]).unwrap();
        drop(j);
        let j = FleetJournal::resume(&dir, fp.clone()).unwrap();
        assert_eq!(j.len(), 2, "append after a torn tail must survive a second resume");
        assert_eq!(FleetAggregate::from_exact_json(&j.shard(1).unwrap().0).unwrap(), shard1);
        drop(j);
        let err = FleetJournal::resume(&dir, json!({"population": 21u64})).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_report_round_trips_strictly() {
        let s = spec(45);
        let params = FleetParams { population: 45, seed: s.seed, shard_size: 10 };
        let mut agg = FleetAggregate::new(s.seed);
        observe_synthetic(&mut agg, &s, 0..45);
        let report = report_json(&params, &s, &agg);
        let dir = std::env::temp_dir().join("kagura_fleet_jsonl_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.jsonl");
        fs::write(&path, report_jsonl(&report)).unwrap();
        let parsed = parse_fleet_file(&path).unwrap();
        assert_eq!(parsed.population, 45);
        assert_eq!(parsed.seed, s.seed);
        assert_eq!(parsed.cells, 45);
        assert_eq!(parsed.strata.len(), FleetSpec::STRATA as usize + 1);
        assert_eq!(parsed.strata.last().unwrap().stratum, "overall");
        let overall = parsed.strata.last().unwrap();
        assert!(overall.metrics["speedup"].0 > 0, "speedup must be observed");
        // Corruption is rejected with a file:line diagnostic.
        let mut lines: Vec<String> =
            fs::read_to_string(&path).unwrap().lines().map(String::from).collect();
        lines[1] = lines[1].replace("\"cells\":", "\"cels\":");
        fs::write(&path, lines.join("\n")).unwrap();
        let err = parse_fleet_file(&path).unwrap_err();
        assert!(err.contains(":2:"), "diagnostic must name the line: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
