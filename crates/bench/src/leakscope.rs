//! Leakscope JSON adapters and report rendering.
//!
//! The sim crate's [`CellAttackReport`] crosses process boundaries here:
//! serialization to a strict JSONL stream (one `leakscope` header, one
//! `probe` line per guess run, one `guess` line per recovered byte, one
//! trailing `summary`), a strict parser that names the offending line and
//! field on malformed input — mirroring the cachescope conventions CI's
//! parse-back gate enforces — and the text reports `repro explain`
//! prints: the per-cell guess timeline and the cross-cell
//! MI/guesses-to-recovery table.

use std::path::{Path, PathBuf};

use ehs_sim::{CellAttackReport, GuessProbe};
use ehs_telemetry::AttackStats;
use serde_json::{json, Value};

use crate::cachescope::{arr, f, field, s, u, ScopeLabels};

/// Lowercase hex of a byte string.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses lowercase/uppercase hex into bytes; the error says what's wrong.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err(format!("hex string has odd length {}", text.len()));
    }
    (0..text.len() / 2)
        .map(|i| {
            u8::from_str_radix(&text[2 * i..2 * i + 2], 16)
                .map_err(|_| format!("invalid hex at offset {}", 2 * i))
        })
        .collect()
}

fn i64_of(v: &Value, path: &str) -> Result<i64, String> {
    field(v, path)?.as_i64().ok_or_else(|| format!("field `{path}` is not an integer"))
}

fn bool_of(v: &Value, path: &str) -> Result<bool, String> {
    field(v, path)?.as_bool().ok_or_else(|| format!("field `{path}` is not a boolean"))
}

fn byte_of(v: &Value, path: &str) -> Result<u8, String> {
    let raw = u(v, path)?;
    u8::try_from(raw).map_err(|_| format!("field `{path}` does not fit in a byte ({raw})"))
}

fn stats_json(st: &AttackStats) -> Value {
    json!({
        "guesses": st.guesses,
        "probe_accesses": st.probe_accesses,
        "bytes_probed": st.bytes_probed,
        "retries": st.retries,
        "recovered_bytes": st.recovered_bytes,
        "secret_bytes": st.secret_bytes,
    })
}

/// The full attack report as a JSONL stream: `leakscope` header, `probe`
/// rows (the guess timeline), `guess` rows (recovered bytes), trailing
/// `summary`.
pub fn report_to_jsonl(labels: &ScopeLabels, report: &CellAttackReport) -> String {
    let mut lines: Vec<Value> =
        Vec::with_capacity(2 + report.probes.len() + report.recovered.len());
    lines.push(json!({
        "kind": "leakscope",
        "app": labels.app.clone(),
        "design": labels.design.clone(),
        "governor": labels.governor.clone(),
        "algorithm": report.algorithm.name(),
        "supported": report.supported,
        "secret": to_hex(&report.secret),
        "pad_family": report.pad_family,
    }));
    for p in &report.probes {
        lines.push(json!({
            "kind": "probe",
            "byte_index": p.byte_index,
            "guess": p.guess,
            "retry": p.retry,
            "latency": p.latency,
            "hit": p.hit,
            "occ_delta": p.occ_delta,
        }));
    }
    for (i, &b) in report.recovered.iter().enumerate() {
        lines.push(json!({ "kind": "guess", "byte_index": i, "value": b }));
    }
    let hists: Vec<Value> = report
        .histograms
        .iter()
        .map(|(secret, h)| {
            let bins: Vec<Value> = h.bins().map(|(l, c)| json!([l, c])).collect();
            json!({ "secret": secret, "bins": bins })
        })
        .collect();
    lines.push(json!({
        "kind": "summary",
        "stats": stats_json(&report.stats),
        "recovered": to_hex(&report.recovered),
        "mi_bits": report.mi_bits,
        "capacity_bits": report.capacity_bits,
        "mi_samples": report.mi_samples.len(),
        "histograms": hists,
    }));
    lines.iter().map(|v| serde_json::to_string(v).expect("serializable") + "\n").collect()
}

/// Atomically writes the JSONL stream for one cell.
pub fn write_jsonl(
    path: &Path,
    labels: &ScopeLabels,
    report: &CellAttackReport,
) -> std::io::Result<()> {
    crate::fsutil::atomic_write(path, report_to_jsonl(labels, report).as_bytes())
}

/// A strictly-parsed leakscope stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLeak {
    /// Header identity (`app` carries the cell slug).
    pub labels: ScopeLabels,
    /// Compressor label from the header.
    pub algorithm: String,
    /// Whether an eviction-oracle layout calibrated at all.
    pub supported: bool,
    /// The planted secret.
    pub secret: Vec<u8>,
    /// Calibrated pad-family index, if any.
    pub pad_family: Option<u64>,
    /// Guess timeline, in stream order.
    pub probes: Vec<GuessProbe>,
    /// `(byte_index, value)` per recovered byte, in stream order.
    pub guesses: Vec<(u64, u8)>,
    /// Attack effort accounting from the summary.
    pub stats: AttackStats,
    /// Recovered bytes from the summary.
    pub recovered: Vec<u8>,
    /// Plug-in mutual information, bits.
    pub mi_bits: f64,
    /// Blahut–Arimoto channel capacity, bits.
    pub capacity_bits: f64,
    /// Number of `(secret, observable)` samples behind the estimates.
    pub mi_samples: u64,
    /// Per-secret-value latency histograms: `(secret, [(latency, count)])`.
    pub histograms: LeakHistograms,
}

fn probe_from(v: &Value) -> Result<GuessProbe, String> {
    Ok(GuessProbe {
        byte_index: byte_of(v, "byte_index")?,
        guess: byte_of(v, "guess")?,
        retry: u(v, "retry")? as u32,
        latency: u(v, "latency")?,
        hit: bool_of(v, "hit")?,
        occ_delta: i64_of(v, "occ_delta")?,
    })
}

fn stats_from(v: &Value) -> Result<AttackStats, String> {
    Ok(AttackStats {
        guesses: u(v, "stats.guesses")?,
        probe_accesses: u(v, "stats.probe_accesses")?,
        bytes_probed: u(v, "stats.bytes_probed")?,
        retries: u(v, "stats.retries")?,
        recovered_bytes: u(v, "stats.recovered_bytes")? as u32,
        secret_bytes: u(v, "stats.secret_bytes")? as u32,
    })
}

/// Parsed per-secret-value latency histograms: `(secret, [(latency, count)])`.
pub type LeakHistograms = Vec<(u64, Vec<(u64, u64)>)>;

fn histograms_from(v: &Value) -> Result<LeakHistograms, String> {
    let mut out = Vec::new();
    for (i, h) in arr(v, "histograms")?.iter().enumerate() {
        let secret = u(h, "secret").map_err(|_| format!("field `histograms[{i}].secret`"))?;
        let mut bins = Vec::new();
        for (j, b) in arr(h, "bins")
            .map_err(|_| format!("field `histograms[{i}].bins` is not an array"))?
            .iter()
            .enumerate()
        {
            let pair = b
                .as_array()
                .filter(|p| p.len() == 2)
                .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
                .ok_or_else(|| {
                    format!("field `histograms[{i}].bins[{j}]` is not a [latency, count] pair")
                })?;
            bins.push(pair);
        }
        out.push((secret, bins));
    }
    Ok(out)
}

/// Strictly parses one leakscope JSONL stream; the error names the
/// 1-based line and the offending field.
pub fn parse_leakscope_str(text: &str) -> Result<ParsedLeak, (usize, String)> {
    let mut parsed: Option<ParsedLeak> = None;
    let mut done = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| (lineno, e);
        let v: Value = serde_json::from_str(line).map_err(|e| at(format!("invalid JSON: {e}")))?;
        if done {
            return Err(at("unexpected line after the `summary` line".into()));
        }
        let kind = s(&v, "kind").map_err(at)?;
        if parsed.is_none() && kind != "leakscope" {
            return Err(at(format!("first line must have kind `leakscope`, got `{kind}`")));
        }
        match kind.as_str() {
            "leakscope" => {
                if parsed.is_some() {
                    return Err(at("duplicate `leakscope` header line".into()));
                }
                let pad_family = match field(&v, "pad_family").map_err(at)? {
                    Value::Null => None,
                    other => Some(other.as_u64().ok_or_else(|| {
                        at("field `pad_family` is not an unsigned integer or null".into())
                    })?),
                };
                parsed = Some(ParsedLeak {
                    labels: ScopeLabels {
                        app: s(&v, "app").map_err(at)?,
                        design: s(&v, "design").map_err(at)?,
                        governor: s(&v, "governor").map_err(at)?,
                    },
                    algorithm: s(&v, "algorithm").map_err(at)?,
                    supported: bool_of(&v, "supported").map_err(at)?,
                    secret: from_hex(&s(&v, "secret").map_err(at)?)
                        .map_err(|e| at(format!("field `secret`: {e}")))?,
                    pad_family,
                    probes: Vec::new(),
                    guesses: Vec::new(),
                    stats: AttackStats::default(),
                    recovered: Vec::new(),
                    mi_bits: 0.0,
                    capacity_bits: 0.0,
                    mi_samples: 0,
                    histograms: Vec::new(),
                });
            }
            "probe" => {
                let p = parsed.as_mut().expect("header precedes by construction");
                p.probes.push(probe_from(&v).map_err(at)?);
            }
            "guess" => {
                let p = parsed.as_mut().expect("header precedes by construction");
                p.guesses
                    .push((u(&v, "byte_index").map_err(at)?, byte_of(&v, "value").map_err(at)?));
            }
            "summary" => {
                let p = parsed.as_mut().expect("header precedes by construction");
                p.stats = stats_from(&v).map_err(at)?;
                p.recovered = from_hex(&s(&v, "recovered").map_err(at)?)
                    .map_err(|e| at(format!("field `recovered`: {e}")))?;
                p.mi_bits = f(&v, "mi_bits").map_err(at)?;
                p.capacity_bits = f(&v, "capacity_bits").map_err(at)?;
                p.mi_samples = u(&v, "mi_samples").map_err(at)?;
                p.histograms = histograms_from(&v).map_err(at)?;
                done = true;
            }
            other => return Err(at(format!("unknown line kind `{other}`"))),
        }
    }
    let last = text.lines().count().max(1);
    let parsed =
        parsed.ok_or((last, "empty stream: missing `leakscope` header line".to_string()))?;
    if !done {
        return Err((last, "stream ended without a `summary` line".to_string()));
    }
    if parsed.recovered.len() != parsed.guesses.len() {
        return Err((
            last,
            format!(
                "summary `recovered` has {} byte(s) but the stream has {} `guess` line(s)",
                parsed.recovered.len(),
                parsed.guesses.len()
            ),
        ));
    }
    Ok(parsed)
}

/// [`parse_leakscope_str`] over a file, prefixing `file:line:`.
pub fn parse_leakscope_file(path: &Path) -> Result<ParsedLeak, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_leakscope_str(&text).map_err(|(line, msg)| format!("{}:{line}: {msg}", path.display()))
}

/// Finds every `leakscope_<cell>.jsonl` under `dir`, sorted by cell slug.
pub fn discover_leakscope_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(cell) = name.strip_prefix("leakscope_").and_then(|n| n.strip_suffix(".jsonl")) {
            found.push((cell.to_string(), entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Renders one cell's attack report: outcome, guess timeline, channel
/// estimates, probe-latency split.
pub fn render_leak_report(parsed: &ParsedLeak) -> String {
    let mut out = String::new();
    let mut w = |s: String| out.push_str(&(s + "\n"));
    let p = &parsed.labels;
    w(format!("=== {} leakscope ===", p.app));
    w(format!("  run: {} on {} under {}", parsed.algorithm, p.design, p.governor));
    let st = &parsed.stats;
    let outcome = if !parsed.supported {
        "structurally immune (no eviction-oracle layout calibrates)".to_string()
    } else if st.recovered() {
        format!("SECRET RECOVERED {}/{} bytes", st.recovered_bytes, st.secret_bytes)
    } else {
        format!("partial recovery {}/{} bytes", st.recovered_bytes, st.secret_bytes)
    };
    w(format!("  attack: {outcome} (planted {})", to_hex(&parsed.secret)));
    w(format!(
        "  effort: {} guess run(s), {} retries, {} probe access(es), {} byte(s) probed",
        st.guesses, st.retries, st.probe_accesses, st.bytes_probed
    ));
    if !parsed.guesses.is_empty() {
        // Probes per byte index, so the timeline shows where sweeps stalled.
        let line: Vec<String> = parsed
            .guesses
            .iter()
            .map(|&(j, val)| {
                let probes =
                    parsed.probes.iter().filter(|pr| u64::from(pr.byte_index) == j).count();
                format!("[{j}]=0x{val:02x} ({probes} probe(s))")
            })
            .collect();
        w(format!("  guess timeline: {}", line.join(" ")));
    }
    w(format!(
        "  channel: MI {:.3} bit(s), capacity {:.3} bit(s) over {} sample(s)",
        parsed.mi_bits, parsed.capacity_bits, parsed.mi_samples
    ));
    // Global latency split across all per-secret histograms: attacker-visible
    // hit/miss separation in one line.
    let mut totals: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (_, bins) in &parsed.histograms {
        for &(lat, n) in bins {
            *totals.entry(lat).or_insert(0) += n;
        }
    }
    if !totals.is_empty() {
        let split: Vec<String> = totals.iter().map(|(lat, n)| format!("{lat} cy ×{n}")).collect();
        w(format!(
            "  probe latencies ({} secret value(s)): {}",
            parsed.histograms.len(),
            split.join(", ")
        ));
    }
    out
}

/// The cross-cell table `repro explain` and the `leakscope` experiment
/// print: per (compressor, governor) MI, capacity and guesses-to-recovery.
pub fn render_leak_table(cells: &[ParsedLeak]) -> String {
    let mut out = String::new();
    out.push_str("leakscope cells (timing channel per compressor × governor):\n");
    out.push_str(&format!(
        "  {:<10} {:<14} {:>8} {:>8} {:>10} {:>8}  note\n",
        "algorithm", "governor", "MI", "capacity", "recovered", "guesses"
    ));
    for c in cells {
        let note = if !c.supported {
            "immune"
        } else if c.stats.recovered() {
            "RECOVERED"
        } else {
            "partial"
        };
        out.push_str(&format!(
            "  {:<10} {:<14} {:>8.3} {:>8.3} {:>10} {:>8}  {note}\n",
            c.algorithm,
            c.labels.governor,
            c.mi_bits,
            c.capacity_bits,
            format!("{}/{}", c.stats.recovered_bytes, c.stats.secret_bytes),
            c.stats.guesses,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_telemetry::LatencyHistogram;

    fn sample_report() -> CellAttackReport {
        let mut hist = LatencyHistogram::default();
        hist.record(2);
        hist.record(13);
        hist.record(13);
        CellAttackReport {
            algorithm: ehs_compress::Algorithm::CPack,
            governor: "always",
            supported: true,
            pad_family: Some(2),
            filler: Some([1, 2, 3, 4, 5, 6, 7, 8]),
            secret: [0x2A, 0x07, 0x11, 0x5C, 0x3D, 0x66, 0x08, 0x4B],
            recovered: vec![0x2A, 0x07],
            stats: AttackStats {
                guesses: 300,
                probe_accesses: 1800,
                bytes_probed: 57600,
                retries: 1,
                recovered_bytes: 2,
                secret_bytes: 8,
            },
            probes: vec![
                GuessProbe {
                    byte_index: 0,
                    guess: 0,
                    retry: 0,
                    latency: 13,
                    hit: false,
                    occ_delta: 2,
                },
                GuessProbe {
                    byte_index: 0,
                    guess: 42,
                    retry: 0,
                    latency: 2,
                    hit: true,
                    occ_delta: 0,
                },
                GuessProbe {
                    byte_index: 1,
                    guess: 7,
                    retry: 0,
                    latency: 2,
                    hit: true,
                    occ_delta: 0,
                },
            ],
            mi_bits: 3.5,
            capacity_bits: 3.75,
            mi_samples: vec![(0, 0), (1, 1)],
            histograms: vec![(0x18, hist)],
        }
    }

    fn labels() -> ScopeLabels {
        ScopeLabels::new("cpack_always", "NVSRAMCache", "always")
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        assert_eq!(to_hex(&[0x00, 0xAB, 0x7F]), "00ab7f");
        assert_eq!(from_hex("00ab7f").unwrap(), vec![0x00, 0xAB, 0x7F]);
        assert!(from_hex("abc").unwrap_err().contains("odd length"));
        assert!(from_hex("zz").unwrap_err().contains("offset 0"));
    }

    #[test]
    fn jsonl_round_trips_through_the_strict_parser() {
        let report = sample_report();
        let text = report_to_jsonl(&labels(), &report);
        let parsed = parse_leakscope_str(&text).expect("generated stream parses");
        assert_eq!(parsed.labels, labels());
        assert_eq!(parsed.algorithm, "C-Pack");
        assert!(parsed.supported);
        assert_eq!(parsed.pad_family, Some(2));
        assert_eq!(parsed.secret, report.secret.to_vec());
        assert_eq!(parsed.probes, report.probes);
        assert_eq!(parsed.guesses, vec![(0, 0x2A), (1, 0x07)]);
        assert_eq!(parsed.stats, report.stats);
        assert_eq!(parsed.recovered, report.recovered);
        assert_eq!(parsed.mi_bits, 3.5);
        assert_eq!(parsed.mi_samples, 2);
        assert_eq!(parsed.histograms, vec![(0x18, vec![(2, 1), (13, 2)])]);
    }

    #[test]
    fn strict_parse_names_line_and_field() {
        let text = report_to_jsonl(&labels(), &sample_report());
        // Corrupt a probe row: drop its `latency` field name.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = lines[1].replacen("\"latency\":", "\"lateness\":", 1);
        let (line, err) = parse_leakscope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 2);
        assert!(err.contains("`latency`"), "error must name the field: {err}");

        // Mistype a nested stats field in the summary.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let n = lines.len();
        lines[n - 1] = lines[n - 1].replacen("\"guesses\":300", "\"guesses\":\"many\"", 1);
        let (line, err) = parse_leakscope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, n);
        assert!(err.contains("`stats.guesses`"), "{err}");

        // Truncation mid-token is an invalid-JSON error on that line.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let cut = lines[2].len() / 2;
        lines[2].truncate(cut);
        let (line, err) = parse_leakscope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 3);
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn structural_defects_are_rejected() {
        let text = report_to_jsonl(&labels(), &sample_report());
        // Missing header.
        let body: Vec<&str> = text.lines().skip(1).collect();
        let (_, err) = parse_leakscope_str(&body.join("\n")).unwrap_err();
        assert!(err.contains("first line"), "{err}");
        // Missing summary.
        let n = text.lines().count();
        let head: Vec<&str> = text.lines().take(n - 1).collect();
        let (_, err) = parse_leakscope_str(&head.join("\n")).unwrap_err();
        assert!(err.contains("summary"), "{err}");
        // A guess line the summary's `recovered` does not account for.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.insert(n - 1, "{\"kind\":\"guess\",\"byte_index\":2,\"value\":9}".into());
        let (_, err) = parse_leakscope_str(&lines.join("\n")).unwrap_err();
        assert!(err.contains("`guess` line"), "{err}");
        // Unknown kind.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.insert(1, "{\"kind\": \"mystery\"}".into());
        let (line, err) = parse_leakscope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 2);
        assert!(err.contains("unknown line kind `mystery`"), "{err}");
    }

    #[test]
    fn reports_cover_outcome_timeline_and_channel() {
        let parsed = parse_leakscope_str(&report_to_jsonl(&labels(), &sample_report())).unwrap();
        let text = render_leak_report(&parsed);
        assert!(text.contains("=== cpack_always leakscope ==="));
        assert!(text.contains("C-Pack on NVSRAMCache under always"));
        assert!(text.contains("partial recovery 2/8 bytes"));
        assert!(text.contains("[0]=0x2a (2 probe(s)) [1]=0x07 (1 probe(s))"));
        assert!(text.contains("MI 3.500 bit(s), capacity 3.750 bit(s) over 2 sample(s)"));
        assert!(text.contains("2 cy ×1, 13 cy ×2"), "{text}");

        let table = render_leak_table(std::slice::from_ref(&parsed));
        assert!(table.contains("C-Pack"));
        assert!(table.contains("partial"));
        assert!(table.contains("2/8"));
    }
}
