//! `tracegen` — generate, inspect and convert ambient power traces in the
//! paper's text format (one average-power value in µW per 10 µs window).
//!
//! ```text
//! tracegen gen <rfhome|solar|thermal> <len> [--seed S] [--out FILE]
//! tracegen stats <FILE>
//! tracegen constant <uW> <len> [--out FILE]
//! ```
//!
//! Traces written by this tool feed straight into
//! `PowerTrace::read_text` and therefore into any simulation, so recorded
//! traces from real harvesters can be swapped in for the synthetic ones.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;

use ehs_energy::{PowerTrace, TraceKind};
use ehs_model::Power;

fn usage() {
    eprintln!("usage: tracegen gen <rfhome|solar|thermal> <len> [--seed S] [--out FILE]");
    eprintln!("       tracegen constant <uW> <len> [--out FILE]");
    eprintln!("       tracegen stats <FILE>");
}

fn parse_kind(name: &str) -> Option<TraceKind> {
    match name.to_ascii_lowercase().as_str() {
        "rfhome" | "rf" => Some(TraceKind::RfHome),
        "solar" => Some(TraceKind::Solar),
        "thermal" => Some(TraceKind::Thermal),
        _ => None,
    }
}

fn write_out(trace: &PowerTrace, out: Option<&str>) -> io::Result<()> {
    match out {
        Some(path) => {
            // Buffer the whole trace so the file write is atomic (tmp +
            // fsync + rename): a killed tracegen never leaves a torn
            // trace for a later simulation to trip over.
            let mut buf = Vec::with_capacity(trace.len() * 12);
            trace.write_text(&mut buf)?;
            kagura_bench::fsutil::atomic_write(std::path::Path::new(path), &buf)?;
            eprintln!("wrote {} samples ({}) to {path}", trace.len(), trace.duration());
        }
        None => {
            let stdout = io::stdout();
            trace.write_text(BufWriter::new(stdout.lock()))?;
        }
    }
    Ok(())
}

fn print_stats(trace: &PowerTrace) {
    let stats = trace.stats();
    println!("samples         : {}", trace.len());
    println!("duration        : {}", trace.duration());
    println!("mean power      : {}", stats.mean);
    println!("std deviation   : {}", stats.std_dev);
    println!("stable fraction : {:.1}%", stats.stable_fraction * 100.0);
    let total = stats.mean * trace.duration();
    println!("total energy    : {total}");
    // A terminal sparkline of 60 buckets.
    let buckets = 60usize.min(trace.len());
    let per = trace.len() / buckets;
    let glyphs: Vec<char> = " .:-=+*#%@".chars().collect();
    let max = trace.samples().iter().map(|p| p.microwatts()).fold(f64::MIN, f64::max).max(1e-9);
    let mut line = String::new();
    for b in 0..buckets {
        let slice = &trace.samples()[b * per..((b + 1) * per).min(trace.len())];
        let avg = slice.iter().map(|p| p.microwatts()).sum::<f64>() / slice.len().max(1) as f64;
        let idx = ((avg / max) * (glyphs.len() - 1) as f64).round() as usize;
        line.push(glyphs[idx.min(glyphs.len() - 1)]);
    }
    println!("profile         : [{line}]");
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get_flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    match args.first().map(String::as_str) {
        Some("gen") => {
            let kind = args
                .get(1)
                .and_then(|k| parse_kind(k))
                .ok_or("gen needs a source: rfhome | solar | thermal")?;
            let len: usize = args
                .get(2)
                .and_then(|l| l.parse().ok())
                .filter(|&l| l > 0)
                .ok_or("gen needs a positive sample count")?;
            let seed: u64 = get_flag("--seed")
                .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
                .transpose()?
                .unwrap_or(42);
            let trace = PowerTrace::generate(kind, seed, len);
            write_out(&trace, get_flag("--out").as_deref()).map_err(|e| e.to_string())?;
            Ok(())
        }
        Some("constant") => {
            let uw: f64 = args
                .get(1)
                .and_then(|l| l.parse().ok())
                .filter(|&u| u >= 0.0)
                .ok_or("constant needs a non-negative power in uW")?;
            let len: usize = args
                .get(2)
                .and_then(|l| l.parse().ok())
                .filter(|&l| l > 0)
                .ok_or("constant needs a positive sample count")?;
            let trace = PowerTrace::constant(Power::from_microwatts(uw), len);
            write_out(&trace, get_flag("--out").as_deref()).map_err(|e| e.to_string())?;
            Ok(())
        }
        Some("stats") => {
            let path = args.get(1).ok_or("stats needs a trace file")?;
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            // TraceError carries the offending line; prepend the file.
            let trace =
                PowerTrace::read_text(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))?;
            print_stats(&trace);
            Ok(())
        }
        _ => {
            usage();
            Err("unknown command".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let _ = writeln!(io::stderr(), "tracegen: {e}");
            ExitCode::FAILURE
        }
    }
}
