//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id>... [--scale S] [--apps a,b,c] [--out DIR] [--jobs N]
//!                          [--telemetry DIR] [--quiet] [--resume DIR]
//!                          [--job-timeout SECS] [--job-max-insts N]
//!                          [--audit-strict]
//! repro all                # every experiment
//! repro list               # show available experiments
//! repro explain DIR        # render flight-record + cachescope reports
//! ```
//!
//! Results print as tables (with the paper's reference numbers quoted
//! underneath) and are written as JSON under `results/`.
//!
//! `--jobs N` caps concurrent simulations process-wide (default: the
//! machine's available parallelism). Independent experiments run
//! concurrently and each submits its whole app × governor grid to the
//! shared worker pool, so N simulations stay in flight until the batch
//! drains. Simulations are deterministic and results are collected in
//! submission order, so every JSON file is byte-identical at any `--jobs`
//! value; only the interleaving of progress lines differs. `--jobs 1`
//! runs everything inline for cleanly grouped output.
//!
//! Each experiment reports start/finish on stderr (id, wall-clock, which
//! worker slot ran it); `--quiet` suppresses those lines. `--telemetry
//! DIR` enables timing spans (written to `DIR/spans.json`), dumps the
//! worker pool's job events (`DIR/pool_events.jsonl`) and per-job latency
//! histogram (`DIR/pool_metrics.json`), and lets event-capturing
//! experiments dump their streams under `DIR`.
//!
//! # Resilience
//!
//! Every artifact is written atomically (tmp file + fsync + rename) and
//! each finished experiment is journaled to `<out>/run_journal.jsonl`, so
//! a run killed at any instant — SIGKILL included — leaves only complete
//! artifacts plus a journal of what finished. `--resume DIR` re-runs only
//! the experiments missing from DIR's journal (the journal must
//! fingerprint the same `--scale`/`--apps`), converging to byte-identical
//! output. `--job-timeout SECS` arms a wall-clock watchdog per simulation
//! job and `--job-max-insts N` a deterministic instruction budget; a
//! cancelled or panicking grid cell degrades to `null` report cells plus a
//! record in `<out>/failures.json` instead of aborting the run.
//!
//! # Energy-flow observability
//!
//! Every simulation audits an energy-conservation ledger at each
//! power-cycle boundary; violations are counted per experiment and
//! reported on the finish line. `--audit-strict` escalates them to
//! per-cell failures and makes the whole run exit non-zero when any
//! cell violated conservation or failed. `repro explain DIR` renders
//! per-app decision reports (mode switches, `R_thres` trajectory,
//! estimator error, wasted compression energy) from the
//! `flight_<app>.jsonl` streams that `repro energy_waste --telemetry
//! DIR` dumps, and per-app cache reports (occupancy timeline, eviction
//! breakdown, latency attribution) from the `cachescope_<app>.jsonl`
//! streams that `repro cachescope --telemetry DIR` dumps — parsing both
//! strictly: a malformed line fails the command with a `file:line`
//! diagnostic naming the offending field.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ehs_telemetry::spans;
use ehs_workloads::App;
use kagura_bench::experiments::{find, ExpFn, REGISTRY};
use kagura_bench::journal::RunJournal;
use kagura_bench::{fsutil, ExpContext};

/// Every flag `repro` understands, for near-miss suggestions on typos.
const KNOWN_FLAGS: &[&str] = &[
    "--scale",
    "--apps",
    "--jobs",
    "--out",
    "--telemetry",
    "--resume",
    "--job-timeout",
    "--job-max-insts",
    "--audit-strict",
    "--quiet",
    "--fleet-size",
    "--fleet-seed",
    "--fleet-shard",
    "--list",
    "--help",
];

fn usage() {
    println!("usage: repro <experiment-id>... [--scale S] [--apps a,b,c] [--out DIR] [--jobs N]");
    println!("                                [--telemetry DIR] [--quiet] [--resume DIR]");
    println!("                                [--job-timeout SECS] [--job-max-insts N]");
    println!("                                [--audit-strict]");
    println!("                                [--fleet-size N] [--fleet-seed S] [--fleet-shard K]");
    println!("       repro all | list");
    println!("       repro explain DIR       render flight-record decision reports from DIR");
    println!();
    list();
}

fn list() {
    println!("experiments:");
    for (id, desc, _) in REGISTRY {
        println!("  {id:<20} {desc}");
    }
}

fn main() -> ExitCode {
    // Exit codes follow kagura_bench::cli::CliError: 2 for usage errors
    // (the command line never parsed), 3 for configuration errors (it
    // parsed but names something invalid — unknown app/experiment,
    // mismatched resume fingerprint), 1 for runtime failures.
    const EXIT_USAGE: u8 = 2;
    const EXIT_CONFIG: u8 = 3;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::from(EXIT_USAGE);
    }

    // `repro explain DIR` is a pure renderer over already-dumped flight
    // streams: no simulation, no journal — dispatch before flag parsing.
    if args[0] == "explain" {
        let Some(dir) = args.get(1) else {
            eprintln!("usage: repro explain RESULTS_DIR");
            return ExitCode::from(EXIT_USAGE);
        };
        return match kagura_bench::explain::explain_dir(std::path::Path::new(dir)) {
            Ok(n) => {
                eprintln!("[explain] rendered {n} report(s) from {dir}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("explain: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut ids: Vec<String> = Vec::new();
    let mut ctx = ExpContext::default();
    let mut resume = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::from(EXIT_USAGE);
                };
                if v <= 0.0 {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::from(EXIT_USAGE);
                }
                ctx.scale = v;
            }
            "--apps" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--apps needs a comma-separated list");
                    return ExitCode::from(EXIT_USAGE);
                };
                let mut apps = Vec::new();
                for name in spec.split(',') {
                    match App::from_name(name.trim()) {
                        Some(a) => apps.push(a),
                        None => {
                            eprintln!("unknown app {name:?}; known apps:");
                            for a in App::ALL {
                                eprint!(" {a}");
                            }
                            eprintln!();
                            return ExitCode::from(EXIT_CONFIG);
                        }
                    }
                }
                ctx.apps = apps.clone();
                ctx.sens_apps = apps;
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
                ehs_sim::parallel::set_max_workers(n);
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::from(EXIT_USAGE);
                };
                ctx.out_dir = dir.into();
            }
            "--telemetry" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--telemetry needs a directory");
                    return ExitCode::from(EXIT_USAGE);
                };
                ctx.telemetry_dir = Some(dir.into());
            }
            "--resume" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--resume needs the results directory of the interrupted run");
                    return ExitCode::from(EXIT_USAGE);
                };
                resume = true;
                ctx.out_dir = dir.into();
            }
            "--job-timeout" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--job-timeout needs a positive number of seconds");
                    return ExitCode::from(EXIT_USAGE);
                };
                if secs <= 0.0 {
                    eprintln!("--job-timeout needs a positive number of seconds");
                    return ExitCode::from(EXIT_USAGE);
                }
                ctx.job_budget.max_wall = Some(Duration::from_secs_f64(secs));
            }
            "--job-max-insts" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--job-max-insts needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                };
                if n == 0 {
                    eprintln!("--job-max-insts needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                }
                ctx.job_budget.max_executed_insts = Some(n);
            }
            "--fleet-size" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--fleet-size needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                };
                ctx.fleet.population = n;
            }
            "--fleet-seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--fleet-seed needs an unsigned integer");
                    return ExitCode::from(EXIT_USAGE);
                };
                ctx.fleet.seed = s;
            }
            "--fleet-shard" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)
                else {
                    eprintln!("--fleet-shard needs a positive integer");
                    return ExitCode::from(EXIT_USAGE);
                };
                ctx.fleet.shard_size = n;
            }
            "--audit-strict" => ctx.audit_strict = true,
            "--quiet" | "-q" => ctx.quiet = true,
            "list" | "--list" | "-l" => {
                list();
                return ExitCode::SUCCESS;
            }
            "help" | "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            // Anything flag-shaped but unrecognized is a hard error
            // naming the nearest valid flag — a misspelled option must
            // not silently become an "experiment id" and fail later (or
            // worse, be dropped while the run proceeds without it).
            other if other.starts_with('-') => {
                eprintln!("repro: {}", kagura_bench::cli::unknown_flag_error(other, KNOWN_FLAGS));
                return ExitCode::from(EXIT_USAGE);
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    ctx.resume = resume;

    if ids.iter().any(|i| i == "all") {
        ids = REGISTRY.iter().map(|&(id, _, _)| id.to_string()).collect();
    }
    if ids.is_empty() {
        usage();
        return ExitCode::from(EXIT_USAGE);
    }

    // Resolve every id before running anything, so a typo fails fast
    // instead of after hours of simulation.
    let mut runs: Vec<(&str, ExpFn)> = Vec::new();
    for id in &ids {
        let Some(f) = find(id) else {
            eprintln!("unknown experiment {id:?} (try `repro list`)");
            return ExitCode::from(EXIT_CONFIG);
        };
        runs.push((id, f));
    }

    // The journal fingerprints the knobs that change simulation results;
    // resuming under different ones would splice incompatible outputs.
    let fingerprint = serde_json::json!({
        "scale": ctx.scale,
        "apps": ctx.apps.iter().map(|a| a.to_string()).collect::<Vec<_>>(),
        "sens_apps": ctx.sens_apps.iter().map(|a| a.to_string()).collect::<Vec<_>>(),
        "fleet": {
            "population": ctx.fleet.population,
            "seed": ctx.fleet.seed,
            "shard_size": ctx.fleet.shard_size,
        },
    });
    let journal = if resume {
        match RunJournal::resume(&ctx.out_dir, fingerprint) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot resume: {e}");
                return ExitCode::from(EXIT_CONFIG);
            }
        }
    } else {
        // A stale manifest from an earlier run in the same directory must
        // not survive into this run's output tree.
        let _ = std::fs::remove_file(ctx.out_dir.join("failures.json"));
        match RunJournal::create(&ctx.out_dir, fingerprint) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("cannot start journal in {}: {e}", ctx.out_dir.display());
                return ExitCode::FAILURE;
            }
        }
    };
    if resume {
        match fsutil::sweep_tmp_files(&ctx.out_dir) {
            Ok(n) if n > 0 => println!("[resume] swept {n} torn .tmp file(s)"),
            Ok(_) => {}
            Err(e) => eprintln!("[resume] warning: could not sweep .tmp files: {e}"),
        }
        let before = runs.len();
        runs.retain(|(id, _)| !journal.is_done(id));
        if before > runs.len() {
            println!(
                "[resume] {} experiment(s) already journaled in {}; {} left to run",
                before - runs.len(),
                journal.path().display(),
                runs.len(),
            );
        }
    }
    let journal = Arc::new(Mutex::new(journal));

    let jobs = ehs_sim::parallel::max_workers();
    println!(
        "running {} experiment(s) at workload scale {} over {} apps ({} for sweeps), {} job(s)\n",
        runs.len(),
        ctx.scale,
        ctx.apps.len(),
        ctx.sens_apps.len(),
        jobs,
    );
    if jobs > 1 && runs.len() > 1 {
        println!("experiments run concurrently; progress lines may interleave (use --jobs 1 for grouped output)\n");
    }
    if ctx.telemetry_dir.is_some() {
        spans::set_enabled(true);
    }
    let start = std::time::Instant::now();
    // Ledger violations across the whole run, for the strict exit code.
    let run_violations = Arc::new(AtomicU64::new(0));
    // Experiments are independent coordinators: they hold no worker
    // permits themselves, so however many overlap, at most `jobs`
    // simulations execute at once.
    ehs_sim::parallel::run_concurrent(runs, |(id, f)| {
        let t = std::time::Instant::now();
        if !ctx.quiet {
            eprintln!("[{id}] started (worker {})", spans::worker_slot());
        }
        let _span = spans::span("experiment", || id.to_string());
        println!("=== {id} ===");
        // Each experiment gets its own failure collector and cycle/
        // violation counters so records from concurrently running
        // experiments cannot interleave, and its id for attribution.
        let mut run_ctx = ctx.clone();
        run_ctx.exp_id = Some(id.to_string());
        run_ctx.failures = Arc::new(Mutex::new(Vec::new()));
        run_ctx.cycle_total = Arc::new(AtomicU64::new(0));
        run_ctx.violation_total = Arc::new(AtomicU64::new(0));
        let _ = f(&run_ctx);
        // Journal ordering is the crash-safety invariant: the experiment's
        // artifact was atomically renamed into place inside `f`, so once
        // this record is durable a resume may safely skip the id.
        let failures = run_ctx.take_failures();
        if let Err(e) = journal.lock().unwrap_or_else(|e| e.into_inner()).record(id, failures) {
            eprintln!("[{id}] warning: could not journal completion: {e}");
        }
        let (cycles, violations) = run_ctx.take_cell_totals();
        run_violations.fetch_add(violations, Ordering::Relaxed);
        println!("  [{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
        if !ctx.quiet {
            eprintln!(
                "[{id}] finished in {:.1}s (worker {}) — {cycles} power cycle(s), \
                 {violations} ledger violation(s)",
                t.elapsed().as_secs_f64(),
                spans::worker_slot()
            );
        }
    });
    println!("all experiments done in {:.1}s", start.elapsed().as_secs_f64());

    // The failure manifest spans the whole run — journaled cells from an
    // interrupted predecessor included — so a resumed run reconstructs the
    // same failures.json an uninterrupted one would have written.
    let failures = journal.lock().unwrap_or_else(|e| e.into_inner()).all_failures();
    let n_failures = failures.len();
    if !failures.is_empty() {
        let path = ctx.out_dir.join("failures.json");
        let doc = serde_json::json!({ "failures": failures });
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        if let Err(e) = fsutil::atomic_write(&path, text.as_bytes()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  [{n_failures} failed cell(s); manifest in {}]", path.display());
    }
    // Under `--audit-strict` the run's contract is "every cell balanced
    // its energy ledger and completed": any violation (counted in a
    // lenient cell) or failed cell (a strict cell aborts on imbalance)
    // fails the whole invocation.
    let total_violations = run_violations.load(Ordering::Relaxed);
    if ctx.audit_strict && (total_violations > 0 || n_failures > 0) {
        eprintln!(
            "audit-strict: {total_violations} ledger violation(s), {n_failures} failed cell(s) — \
             failing the run"
        );
        return ExitCode::FAILURE;
    }

    if let Some(dir) = &ctx.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("spans.json");
        let doc = spans::to_json(&spans::drain());
        match serde_json::to_string_pretty(&doc) {
            Ok(text) => {
                if let Err(e) = fsutil::atomic_write(&path, text.as_bytes()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("  [timing spans in {}]", path.display());
            }
            Err(e) => eprintln!("cannot serialize spans: {e}"),
        }
        // Pool observability: harness-level job events and the per-job
        // latency histogram accumulated by run_batch.
        let events = ehs_sim::parallel::drain_pool_events();
        if !events.is_empty() {
            let lines: String = events
                .iter()
                .map(|e| {
                    let mut l = serde_json::to_string(&e.to_value()).expect("serializable");
                    l.push('\n');
                    l
                })
                .collect();
            let path = dir.join("pool_events.jsonl");
            if let Err(e) = fsutil::atomic_write(&path, lines.as_bytes()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("  [{} pool event(s) in {}]", events.len(), path.display());
        }
        let metrics = ehs_sim::parallel::pool_metrics().to_json();
        let path = dir.join("pool_metrics.json");
        let text = serde_json::to_string_pretty(&metrics).expect("serializable");
        if let Err(e) = fsutil::atomic_write(&path, text.as_bytes()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  [pool metrics in {}]", path.display());
    }
    ExitCode::SUCCESS
}
