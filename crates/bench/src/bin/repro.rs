//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id>... [--scale S] [--apps a,b,c] [--out DIR] [--jobs N]
//!                          [--telemetry DIR] [--quiet]
//! repro all                # every experiment
//! repro list               # show available experiments
//! ```
//!
//! Results print as tables (with the paper's reference numbers quoted
//! underneath) and are written as JSON under `results/`.
//!
//! `--jobs N` caps concurrent simulations process-wide (default: the
//! machine's available parallelism). Independent experiments run
//! concurrently and each submits its whole app × governor grid to the
//! shared worker pool, so N simulations stay in flight until the batch
//! drains. Simulations are deterministic and results are collected in
//! submission order, so every JSON file is byte-identical at any `--jobs`
//! value; only the interleaving of progress lines differs. `--jobs 1`
//! runs everything inline for cleanly grouped output.
//!
//! Each experiment reports start/finish on stderr (id, wall-clock, which
//! worker slot ran it); `--quiet` suppresses those lines. `--telemetry
//! DIR` enables timing spans (written to `DIR/spans.json`) and lets
//! event-capturing experiments dump their streams under `DIR`.

use std::process::ExitCode;

use ehs_telemetry::spans;
use ehs_workloads::App;
use kagura_bench::experiments::{find, ExpFn, REGISTRY};
use kagura_bench::ExpContext;

fn usage() {
    println!("usage: repro <experiment-id>... [--scale S] [--apps a,b,c] [--out DIR] [--jobs N]");
    println!("                                [--telemetry DIR] [--quiet]");
    println!("       repro all | list");
    println!();
    list();
}

fn list() {
    println!("experiments:");
    for (id, desc, _) in REGISTRY {
        println!("  {id:<20} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let mut ids: Vec<String> = Vec::new();
    let mut ctx = ExpContext::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::FAILURE;
                };
                if v <= 0.0 {
                    eprintln!("--scale needs a positive number");
                    return ExitCode::FAILURE;
                }
                ctx.scale = v;
            }
            "--apps" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--apps needs a comma-separated list");
                    return ExitCode::FAILURE;
                };
                let mut apps = Vec::new();
                for name in spec.split(',') {
                    match App::from_name(name.trim()) {
                        Some(a) => apps.push(a),
                        None => {
                            eprintln!("unknown app {name:?}; known apps:");
                            for a in App::ALL {
                                eprint!(" {a}");
                            }
                            eprintln!();
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ctx.apps = apps.clone();
                ctx.sens_apps = apps;
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
                ehs_sim::parallel::set_max_workers(n);
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                ctx.out_dir = dir.into();
            }
            "--telemetry" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--telemetry needs a directory");
                    return ExitCode::FAILURE;
                };
                ctx.telemetry_dir = Some(dir.into());
            }
            "--quiet" | "-q" => ctx.quiet = true,
            "list" | "--list" | "-l" => {
                list();
                return ExitCode::SUCCESS;
            }
            "help" | "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.iter().any(|i| i == "all") {
        ids = REGISTRY.iter().map(|&(id, _, _)| id.to_string()).collect();
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    // Resolve every id before running anything, so a typo fails fast
    // instead of after hours of simulation.
    let mut runs: Vec<(&str, ExpFn)> = Vec::new();
    for id in &ids {
        let Some(f) = find(id) else {
            eprintln!("unknown experiment {id:?} (try `repro list`)");
            return ExitCode::FAILURE;
        };
        runs.push((id, f));
    }

    let jobs = ehs_sim::parallel::max_workers();
    println!(
        "running {} experiment(s) at workload scale {} over {} apps ({} for sweeps), {} job(s)\n",
        runs.len(),
        ctx.scale,
        ctx.apps.len(),
        ctx.sens_apps.len(),
        jobs,
    );
    if jobs > 1 && runs.len() > 1 {
        println!("experiments run concurrently; progress lines may interleave (use --jobs 1 for grouped output)\n");
    }
    if ctx.telemetry_dir.is_some() {
        spans::set_enabled(true);
    }
    let start = std::time::Instant::now();
    // Experiments are independent coordinators: they hold no worker
    // permits themselves, so however many overlap, at most `jobs`
    // simulations execute at once.
    ehs_sim::parallel::run_concurrent(runs, |(id, f)| {
        let t = std::time::Instant::now();
        if !ctx.quiet {
            eprintln!("[{id}] started (worker {})", spans::worker_slot());
        }
        let _span = spans::span("experiment", || id.to_string());
        println!("=== {id} ===");
        let _ = f(&ctx);
        println!("  [{id} done in {:.1}s]\n", t.elapsed().as_secs_f64());
        if !ctx.quiet {
            eprintln!(
                "[{id}] finished in {:.1}s (worker {})",
                t.elapsed().as_secs_f64(),
                spans::worker_slot()
            );
        }
    });
    println!("all experiments done in {:.1}s", start.elapsed().as_secs_f64());
    if let Some(dir) = &ctx.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("spans.json");
        let doc = spans::to_json(&spans::drain());
        match serde_json::to_string_pretty(&doc) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("  [timing spans in {}]", path.display());
            }
            Err(e) => eprintln!("cannot serialize spans: {e}"),
        }
    }
    ExitCode::SUCCESS
}
