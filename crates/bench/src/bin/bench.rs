//! `bench` — wall-clock benchmark of the parallel experiment harness.
//!
//! ```text
//! bench [--scale S] [--jobs N] [--out FILE]
//! ```
//!
//! Runs the `summary` experiment (the full app × governor grid) once to
//! warm the shared power-trace cache, then times it with one worker and
//! with N workers (default: the machine's available parallelism), and
//! writes the timings, the measured speedup and the host core count to
//! `BENCH_harness.json`. The speedup is whatever the host actually
//! delivers — on a single-core container the N-job phase *is* the
//! one-job phase, so the serial measurement is reused and the reported
//! speedup is exactly 1.0 rather than a noise ratio.
//!
//! Timing spans ([`ehs_telemetry::spans`]) are enabled for the timed
//! phases, so the report also carries per-simulation wall-clock rows
//! (`experiment_spans`) showing which worker slot ran each grid cell.

use std::process::ExitCode;
use std::time::Instant;

use ehs_telemetry::spans;
use kagura_bench::experiments::find;
use kagura_bench::ExpContext;
use serde_json::{json, Value};

/// Times one `summary` run at the given job count and returns its
/// wall-clock seconds plus the timing spans the run recorded.
fn time_summary(ctx: &ExpContext, jobs: usize) -> (f64, Value) {
    ehs_sim::parallel::set_max_workers(jobs);
    let f = find("summary").expect("summary experiment registered");
    let start = Instant::now();
    let _ = f(ctx);
    (start.elapsed().as_secs_f64(), spans::to_json(&spans::drain()))
}

fn main() -> ExitCode {
    let mut scale = 0.05f64;
    let mut out = String::from("BENCH_harness.json");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut jobs = cores;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(v) if v > 0.0 => scale = v,
                    _ => {
                        eprintln!("--scale needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n > 0 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(f) => out = f.clone(),
                    None => {
                        eprintln!("--out needs a file path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench [--scale S] [--jobs N] [--out FILE]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let ctx = ExpContext {
        scale,
        out_dir: std::env::temp_dir().join("kagura-bench-harness"),
        ..ExpContext::default()
    };

    println!("harness benchmark: summary at scale {scale}, {cores} host core(s)");
    println!("warm-up run (populates the power-trace cache)...");
    let (warmup, _) = time_summary(&ctx, jobs);
    println!("  warm-up: {warmup:.1}s");
    // Record per-simulation spans only for the timed phases; the warm-up
    // drain above discarded anything recorded before enabling.
    spans::set_enabled(true);
    println!("timed run, 1 job...");
    let (serial, serial_spans) = time_summary(&ctx, 1);
    println!("  1 job: {serial:.1}s");
    let (parallel, parallel_spans) = if jobs == 1 {
        // The "parallel" configuration is the serial one; re-timing it
        // would just divide noise by noise, so reuse the measurement.
        println!("1 job requested: parallel phase is the serial phase");
        (serial, serial_spans.clone())
    } else {
        println!("timed run, {jobs} job(s)...");
        let (p, spans) = time_summary(&ctx, jobs);
        println!("  {jobs} job(s): {p:.1}s");
        (p, spans)
    };
    let speedup = serial / parallel;
    println!("speedup at {jobs} job(s): {speedup:.2}x on {cores} core(s)");

    let report = json!({
        "benchmark": "experiment harness wall-clock",
        "experiment": "summary",
        "scale": scale,
        "host_cores": cores,
        "grid_cells": ctx.apps.len() * 2,
        "serial_jobs": 1,
        "serial_seconds": serial,
        "parallel_jobs": jobs,
        "parallel_seconds": parallel,
        "speedup": speedup,
        "experiment_spans": {
            "serial": serial_spans,
            "parallel": parallel_spans,
        },
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = kagura_bench::fsutil::atomic_write(std::path::Path::new(&out), text.as_bytes())
    {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("[saved {out}]");
    ExitCode::SUCCESS
}
