//! `simbench` — simulated-instruction throughput of the leaf simulator.
//!
//! ```text
//! simbench [--scale S] [--apps a,b,..] [--repeat N] [--out FILE]
//!          [--check FILE] [--max-regression R] [--skip-reference]
//!          [--governor nocompression|alwayscompress|acc|acckagura]
//! ```
//!
//! For each app, times one complete single-thread run under both machine
//! loops — the event-driven fast-forward path (the default) and the naive
//! per-instruction reference loop — and a *saturated* fast run (one copy
//! of the same simulation per host core, measuring aggregate simulated
//! instructions/sec under full load). Writes `BENCH_sim.json`.
//!
//! `--check BASELINE` turns the binary into a CI regression gate: after
//! measuring, each app present in both the fresh report and the baseline
//! must reach at least `(1 - R)` of the baseline's single-thread
//! fast-path IPS (default `R` = 0.30); otherwise the exit code is
//! non-zero. IPS is close to scale-invariant, so the gate can run at a
//! smaller `--scale` than the committed artifact.

use std::process::ExitCode;
use std::time::Instant;

use ehs_energy::PowerTrace;
use ehs_sim::{ExecMode, GovernorSpec, SimConfig, Simulator};
use ehs_workloads::App;
use serde_json::{json, Value};

/// Power-trace length shared by every timed run (the runner's default).
const TRACE_LEN: usize = 4_000_000;

/// Times `repeat` complete runs; returns `(executed insts, best wall
/// seconds)`. Best-of-N because wall-time noise on a shared host is
/// strictly additive — the minimum is the least-disturbed measurement.
fn time_run(app: App, scale: f64, cfg: &SimConfig, trace: &PowerTrace, repeat: u32) -> (u64, f64) {
    let program = app.build(scale);
    let mut insts = 0;
    let mut best = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let sim = Simulator::new(cfg.clone(), &program, trace);
        let start = Instant::now();
        let stats = sim.run();
        best = best.min(start.elapsed().as_secs_f64());
        insts = stats.executed_insts;
    }
    (insts, best)
}

/// Runs one copy per core concurrently; returns aggregate IPS.
fn saturated_ips(app: App, scale: f64, cfg: &SimConfig, trace: &PowerTrace, cores: usize) -> f64 {
    let program = app.build(scale);
    let start = Instant::now();
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cores)
            .map(|_| {
                let cfg = cfg.clone();
                let program = &program;
                s.spawn(move || Simulator::new(cfg, program, trace).run().executed_insts)
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sim thread")).sum()
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// Every flag `simbench` understands, for near-miss typo suggestions.
const KNOWN_FLAGS: &[&str] = &[
    "--scale",
    "--apps",
    "--repeat",
    "--out",
    "--check",
    "--max-regression",
    "--skip-reference",
    "--governor",
];

fn parse_app(name: &str) -> Option<App> {
    App::ALL.into_iter().find(|a| format!("{a:?}").eq_ignore_ascii_case(name))
}

/// Applies the `--check` gate; returns the failing apps.
fn regressions(fresh: &Value, baseline: &Value, max_regression: f64) -> Vec<String> {
    let field = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let base_apps: Vec<&Value> = baseline
        .get("apps")
        .and_then(Value::as_array)
        .map(|v| v.iter().collect())
        .unwrap_or_default();
    let mut failures = Vec::new();
    for row in fresh.get("apps").and_then(Value::as_array).into_iter().flatten() {
        let name = row.get("app").and_then(Value::as_str).unwrap_or_default();
        let Some(base) =
            base_apps.iter().find(|b| b.get("app").and_then(Value::as_str) == Some(name))
        else {
            continue;
        };
        let (now, was) = (field(row, "fast_ips"), field(base, "fast_ips"));
        if was > 0.0 && now < was * (1.0 - max_regression) {
            failures.push(format!(
                "{name}: {:.2}M IPS < {:.0}% of baseline {:.2}M IPS",
                now / 1e6,
                (1.0 - max_regression) * 100.0,
                was / 1e6
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut scale = 2.0f64;
    let mut out = String::from("BENCH_sim.json");
    let mut apps: Vec<App> =
        vec![App::Sha, App::Crc32, App::Jpegd, App::G721d, App::Gsm, App::Dijkstra];
    let mut check: Option<String> = None;
    let mut max_regression = 0.30f64;
    let mut skip_reference = false;
    let mut repeat = 3u32;
    let mut governor = String::from("AccKagura");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(v) if v > 0.0 => scale = v,
                    _ => {
                        eprintln!("--scale needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--apps" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--apps needs a comma-separated list");
                    return ExitCode::FAILURE;
                };
                apps.clear();
                for name in list.split(',') {
                    match parse_app(name.trim()) {
                        Some(a) => apps.push(a),
                        None => {
                            eprintln!("unknown app {name:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(f) => out = f.clone(),
                    None => {
                        eprintln!("--out needs a file path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(f) => check = Some(f.clone()),
                    None => {
                        eprintln!("--check needs a baseline file path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-regression" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(v) if (0.0..1.0).contains(&v) => max_regression = v,
                    _ => {
                        eprintln!("--max-regression needs a fraction in [0, 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--skip-reference" => skip_reference = true,
            "--governor" => {
                i += 1;
                match args.get(i) {
                    Some(g) => governor = g.clone(),
                    None => {
                        eprintln!("--governor needs a name");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--repeat" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u32>().ok()) {
                    Some(v) if v >= 1 => repeat = v,
                    _ => {
                        eprintln!("--repeat needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                // Name the nearest valid flag for plausible typos
                // instead of leaving the user to diff the usage line.
                if other.starts_with('-') {
                    eprintln!(
                        "simbench: {}",
                        kagura_bench::cli::unknown_flag_error(other, KNOWN_FLAGS)
                    );
                } else {
                    eprintln!("simbench: unexpected argument {other:?}");
                }
                eprintln!(
                    "usage: simbench [--scale S] [--apps a,b,..] [--repeat N] [--out FILE] \
                     [--check FILE] [--max-regression R] [--skip-reference] [--governor G]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let spec = match governor.to_ascii_lowercase().as_str() {
        "nocompression" => GovernorSpec::NoCompression,
        "alwayscompress" => GovernorSpec::AlwaysCompress,
        "acc" => GovernorSpec::Acc,
        "acckagura" => GovernorSpec::AccKagura(Default::default()),
        other => {
            eprintln!("unknown governor {other:?} (nocompression|alwayscompress|acc|acckagura)");
            return ExitCode::FAILURE;
        }
    };
    let cfg = SimConfig::table1().with_governor(spec);
    let trace = PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, TRACE_LEN);
    println!("simulator throughput: scale {scale}, {cores} host core(s), governor {governor}");

    let mut rows = Vec::new();
    for app in &apps {
        // Warm-up run absorbs one-time costs (page faults, allocator).
        let _ = time_run(*app, scale.min(0.05), &cfg, &trace, 1);
        let fast_cfg = cfg.clone().with_exec(ExecMode::FastForward);
        let (insts, fast_s) = time_run(*app, scale, &fast_cfg, &trace, repeat);
        let fast_ips = insts as f64 / fast_s;
        let (ref_ips, speedup) = if skip_reference {
            (0.0, 0.0)
        } else {
            let ref_cfg = cfg.clone().with_exec(ExecMode::Reference);
            let (ref_insts, ref_s) = time_run(*app, scale, &ref_cfg, &trace, repeat);
            assert_eq!(ref_insts, insts, "loops disagree on executed instructions");
            let r = ref_insts as f64 / ref_s;
            (r, fast_ips / r)
        };
        let sat = saturated_ips(*app, scale, &fast_cfg, &trace, cores);
        println!(
            "  {:<10} {:>7.2}M insts  fast {:>6.2}M IPS ({:>6.1} ns/inst)  \
             reference {:>6.2}M IPS  speedup {:>5.2}x  saturated {:>7.2}M IPS",
            format!("{app:?}"),
            insts as f64 / 1e6,
            fast_ips / 1e6,
            1e9 / fast_ips,
            ref_ips / 1e6,
            speedup,
            sat / 1e6,
        );
        rows.push(json!({
            "app": format!("{app:?}"),
            "executed_insts": insts,
            "fast_seconds": fast_s,
            "fast_ips": fast_ips,
            "fast_ns_per_inst": 1e9 / fast_ips,
            "reference_ips": ref_ips,
            "speedup_vs_reference": speedup,
            "saturated_ips": sat,
        }));
    }

    // Geomeans skip zero/non-finite rows (e.g. the reference columns
    // under --skip-reference are all 0.0) instead of letting them
    // poison the aggregate; the excluded counts are recorded alongside
    // so a consumer can tell a clean geomean from a partial one.
    let field = |v: &Value, key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
    let geo = |key: &str| kagura_bench::gmean_filtered(rows.iter().map(|r| field(r, key)));
    let (fast_g, fast_ex) = geo("fast_ips");
    let (ref_g, ref_ex) = geo("reference_ips");
    let (speedup_g, speedup_ex) = geo("speedup_vs_reference");
    let (sat_g, sat_ex) = geo("saturated_ips");
    let headline = json!({
        "fast_ips_geomean": fast_g,
        "reference_ips_geomean": ref_g,
        "speedup_geomean": speedup_g,
        "saturated_ips_geomean": sat_g,
        "excluded_rows": {
            "fast_ips": fast_ex,
            "reference_ips": ref_ex,
            "speedup_vs_reference": speedup_ex,
            "saturated_ips": sat_ex,
        },
    });
    println!(
        "headline: fast {:.2}M IPS single-thread (geomean), {:.2}x vs reference loop",
        field(&headline, "fast_ips_geomean") / 1e6,
        field(&headline, "speedup_geomean"),
    );

    let report = json!({
        "benchmark": "leaf simulator throughput",
        "governor": governor,
        "scale": scale,
        "repeat": repeat,
        "host_cores": cores,
        "apps": rows,
        "headline": headline,
    });
    let text = serde_json::to_string_pretty(&report).expect("serializable");
    if let Err(e) = kagura_bench::fsutil::atomic_write(std::path::Path::new(&out), text.as_bytes())
    {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("[saved {out}]");

    if let Some(baseline_path) = check {
        let baseline: Value = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = regressions(&report, &baseline, max_regression);
        if failures.is_empty() {
            println!(
                "regression gate passed (>= {:.0}% of {baseline_path} per app)",
                (1.0 - max_regression) * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("THROUGHPUT REGRESSION {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
