//! `simrun` — run one EHS simulation from the command line and print a
//! full report (progress, power cycles, caches, energy breakdown).
//!
//! ```text
//! simrun <app> [--scale S]
//!              [--governor baseline|always|acc|kagura|ideal-acc|ideal-kagura|rand-threshold]
//!              [--design nvsram|nvmr|sweepcache] [--algorithm bdi|fpc|cpack|dzc|bpc|fvc]
//!              [--trace rfhome|solar|thermal] [--trace-file FILE] [--seed N]
//!              [--cache BYTES] [--ways N] [--block BYTES] [--cap UF]
//!              [--extension none|edbp|ipex] [--json]
//!              [--inject-at N] [--inject-fault power|torn|corrupt]
//!              [--emit-events FILE] [--chrome-trace FILE]
//!              [--flight-record FILE] [--audit-strict]
//!              [--cachescope FILE] [--cachescope-period N]
//!              [--leakscope FILE] [--leak-secret HEX16]
//! simrun serve [--tcp HOST:PORT] [--port-file PATH] [--state PATH]
//!              [--workers N] [--queue-depth N] [--cache-capacity N]
//!              [--deadline-ms N] [--max-insts N] [--write-timeout-ms N]
//! ```
//!
//! `simrun serve` starts the long-running what-if service
//! ([`kagura_bench::serve`]): NDJSON queries over stdin or TCP, with a
//! persistent result cache, admission control, per-request budgets and
//! graceful drain. See DESIGN.md §"What-if service".
//!
//! `--emit-events FILE` streams every telemetry event of the run as JSONL;
//! `--chrome-trace FILE` writes the same run as a Chrome trace-event file
//! (loadable in Perfetto / `chrome://tracing`, with one duration slice per
//! power cycle); `--flight-record FILE` writes only the decision-relevant
//! subset ([`ehs_telemetry::Event::flight_relevant`]: per-cycle flight
//! records, ledger imbalances, mode switches, threshold adjustments,
//! estimator samples, reboots) — the stream `repro explain` renders. Any
//! of these flags attaches telemetry to the simulator; without them the
//! run takes the uninstrumented fast path.
//!
//! `--cachescope FILE` attaches a cachescope (`ehs_sim::cachescope`) and
//! writes its report — boundary rows, occupancy snapshots, aggregate
//! histograms — as a JSONL stream, then parses the stream back strictly
//! (a schema round-trip check on every dump) and prints the rendered
//! cache report. `--cachescope-period N` additionally samples a
//! full-cache occupancy snapshot every `N` committed instructions.
//! Unlike the telemetry flags, a cachescope keeps the fast-forward loop;
//! it cannot be combined with them in one run (one observability stream
//! per invocation, so each path stays bit-identical to its tests).
//!
//! `--leakscope FILE` runs the compression timing side-channel attack
//! (`ehs_sim::leakscope`) instead of the app: an attacker co-resident
//! with a victim holding a planted 8-byte secret recovers it through
//! probe latencies alone, on the configured compressor × governor. The
//! stream — guess timeline, recovered bytes, MI/capacity summary — is
//! written as JSONL, parsed back strictly, and rendered. `--leak-secret
//! HEX16` overrides the planted secret (exactly 8 bytes). The app
//! positional only labels the stream; like `--cachescope`, it is one
//! observability stream per run.
//!
//! The energy-conservation ledger is always audited at power-cycle
//! boundaries (violations are counted in the report); `--audit-strict`
//! turns the first violation into a hard error.
//!
//! `--inject-at N` arms a one-shot forced power failure immediately after
//! the `N`-th executed instruction (see `ehs_sim::faultinject`);
//! `--inject-fault` picks the flavour — `power` (clean failure, default),
//! `torn` (checkpoint persists nothing), `corrupt` (one payload bit of
//! the first compressed checkpointed block is flipped; a decode failure
//! is reported as a detected consistency violation via `decode_faults`
//! and the `DecodeFault` telemetry event). Ideal two-phase governors are
//! rejected: oracle replay realigns work across power cycles, so an
//! injection point has no stable meaning there.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use std::io::BufWriter;
use std::path::Path;

use ehs_compress::Algorithm;
use ehs_energy::{CapacitorConfig, PowerTrace, TraceKind};
use ehs_sim::{
    run_program, run_program_with_cachescope, run_program_with_telemetry, CachescopeConfig,
    EhsDesign, Extension, FaultKind, GovernorSpec, LeakscopeOptions, SimConfig, SimStats,
    Simulator,
};
use ehs_telemetry::{ChromeTraceSink, JsonlSink, Sink, Stamped};
use ehs_workloads::App;
use kagura_bench::cachescope::{self, ScopeLabels};
use kagura_bench::cli::{validate_args, CliError, FlagSpec};
use kagura_bench::leakscope;

fn usage() {
    eprintln!(
        "usage: simrun <app> [--scale S] [--governor G] [--design D] [--algorithm A]\n\
         \x20                [--trace T | --trace-file FILE] [--seed N] [--cache BYTES]\n\
         \x20                [--ways N] [--block BYTES] [--cap UF] [--extension E] [--json]\n\
         \x20                [--inject-at N] [--inject-fault power|torn|corrupt]\n\
         \x20                [--emit-events FILE] [--chrome-trace FILE]\n\
         \x20                [--flight-record FILE] [--audit-strict]\n\
         \x20                [--cachescope FILE] [--cachescope-period N]\n\
         \x20                [--leakscope FILE] [--leak-secret HEX16]\n\
         \x20      simrun serve [--tcp HOST:PORT] [--state PATH] … (long-running what-if service)\n\
         apps: {}",
        App::ALL.map(|a| a.name()).join(" ")
    );
}

/// Fans one event stream out to the optional JSONL, Chrome-trace and
/// flight-record sinks, so one instrumented run can feed all outputs.
/// The flight sink sees only the decision-relevant subset.
#[derive(Default)]
struct TeeSink {
    jsonl: Option<JsonlSink<BufWriter<File>>>,
    chrome: Option<ChromeTraceSink>,
    flight: Option<JsonlSink<BufWriter<File>>>,
}

impl Sink for TeeSink {
    fn record(&mut self, ev: &Stamped) {
        if let Some(j) = &mut self.jsonl {
            j.record(ev);
        }
        if let Some(c) = &mut self.chrome {
            c.record(ev);
        }
        if let Some(f) = &mut self.flight {
            if ev.event.flight_relevant() {
                f.record(ev);
            }
        }
    }

    fn flush(&mut self) {
        if let Some(j) = &mut self.jsonl {
            j.flush();
        }
        if let Some(c) = &mut self.chrome {
            c.flush();
        }
        if let Some(f) = &mut self.flight {
            f.flush();
        }
    }
}

/// Everything `simrun` accepts, with arity — the whole argument vector
/// is validated against this table before any simulation starts, so a
/// misspelled flag (`--cachescope-peroid`) or a flag left without its
/// value is a hard error naming the nearest valid flag, never a
/// silently ignored option.
const FLAGS: &[FlagSpec] = &[
    FlagSpec::value("--scale"),
    FlagSpec::value("--governor"),
    FlagSpec::value("--design"),
    FlagSpec::value("--algorithm"),
    FlagSpec::value("--trace"),
    FlagSpec::value("--trace-file"),
    FlagSpec::value("--seed"),
    FlagSpec::value("--cache"),
    FlagSpec::value("--ways"),
    FlagSpec::value("--block"),
    FlagSpec::value("--cap"),
    FlagSpec::value("--extension"),
    FlagSpec::switch("--json"),
    FlagSpec::value("--inject-at"),
    FlagSpec::value("--inject-fault"),
    FlagSpec::value("--emit-events"),
    FlagSpec::value("--chrome-trace"),
    FlagSpec::value("--flight-record"),
    FlagSpec::switch("--audit-strict"),
    FlagSpec::value("--cachescope"),
    FlagSpec::value("--cachescope-period"),
    FlagSpec::value("--leakscope"),
    FlagSpec::value("--leak-secret"),
];

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn build_config(args: &Args) -> Result<SimConfig, String> {
    let mut cfg = SimConfig::table1();
    if let Some(g) = args.flag("--governor") {
        cfg.governor = match g {
            "baseline" | "none" => GovernorSpec::NoCompression,
            "always" => GovernorSpec::AlwaysCompress,
            "acc" => GovernorSpec::Acc,
            "kagura" => GovernorSpec::AccKagura(Default::default()),
            "ideal-acc" => GovernorSpec::IdealAcc,
            "ideal-kagura" => GovernorSpec::IdealAccKagura(Default::default()),
            "rand-threshold" | "rand_threshold" => GovernorSpec::RandThreshold(Default::default()),
            other => return Err(format!("unknown governor {other:?}")),
        };
    }
    if let Some(d) = args.flag("--design") {
        cfg.design = match d {
            "nvsram" | "nvsramcache" => EhsDesign::NvsramCache,
            "nvmr" => EhsDesign::Nvmr,
            "sweepcache" | "sweep" => EhsDesign::SweepCache,
            other => return Err(format!("unknown design {other:?}")),
        };
    }
    if let Some(a) = args.flag("--algorithm") {
        cfg.algorithm = match a.to_ascii_lowercase().as_str() {
            "bdi" => Algorithm::Bdi,
            "fpc" => Algorithm::Fpc,
            "cpack" | "c-pack" => Algorithm::CPack,
            "dzc" => Algorithm::Dzc,
            "bpc" => Algorithm::Bpc,
            "fvc" => Algorithm::Fvc,
            other => return Err(format!("unknown algorithm {other:?}")),
        };
    }
    if let Some(t) = args.flag("--trace") {
        cfg.trace_kind = match t.to_ascii_lowercase().as_str() {
            "rfhome" | "rf" => TraceKind::RfHome,
            "solar" => TraceKind::Solar,
            "thermal" => TraceKind::Thermal,
            other => return Err(format!("unknown trace {other:?}")),
        };
    }
    if let Some(s) = args.flag("--seed") {
        cfg.trace_seed = s.parse().map_err(|e| format!("bad seed: {e}"))?;
    }
    if let Some(c) = args.flag("--cache") {
        let bytes: u32 = c.parse().map_err(|e| format!("bad cache size: {e}"))?;
        cfg.system.icache = cfg.system.icache.with_size(bytes);
        cfg.system.dcache = cfg.system.dcache.with_size(bytes);
    }
    if let Some(w) = args.flag("--ways") {
        let ways: u32 = w.parse().map_err(|e| format!("bad way count: {e}"))?;
        cfg.system.icache = cfg.system.icache.with_ways(ways);
        cfg.system.dcache = cfg.system.dcache.with_ways(ways);
    }
    if let Some(b) = args.flag("--block") {
        let bytes: u32 = b.parse().map_err(|e| format!("bad block size: {e}"))?;
        cfg.system.icache = cfg.system.icache.with_block_size(bytes);
        cfg.system.dcache = cfg.system.dcache.with_block_size(bytes);
    }
    if let Some(c) = args.flag("--cap") {
        let uf: f64 = c.parse().map_err(|e| format!("bad capacitance: {e}"))?;
        cfg.capacitor = CapacitorConfig::with_capacitance_uf(uf);
    }
    if let Some(e) = args.flag("--extension") {
        cfg.extension = match e {
            "none" => Extension::None,
            "edbp" => Extension::edbp(),
            "ipex" => Extension::ipex(),
            other => return Err(format!("unknown extension {other:?}")),
        };
    }
    if args.has("--audit-strict") {
        cfg.audit_strict = true;
    }
    Ok(cfg)
}

/// Machine-readable counterpart of [`print_report`]: a JSON tree built
/// field-by-field from the stats (energies in picojoules, time in
/// seconds), stable across runs for identical inputs.
fn json_report(stats: &SimStats) -> serde_json::Value {
    use serde_json::json;
    let breakdown: Vec<_> = stats
        .breakdown
        .iter()
        .map(|(cat, e)| {
            json!({
                "category": cat.label(),
                "picojoules": e.picojoules(),
                "fraction": stats.breakdown.fraction(cat),
            })
        })
        .collect();
    let mut out = json!({
        "progress": {
            "completed": stats.completed,
            "committed_insts": stats.committed_insts,
            "executed_insts": stats.executed_insts,
            "total_cycles": stats.total_cycles,
            "cpi": stats.cpi(),
            "sim_seconds": stats.sim_time.seconds(),
        },
        "intermittence": {
            "power_cycles": stats.power_cycles.len(),
            "checkpoints": stats.checkpoints,
            "avg_insts_per_cycle": stats.avg_insts_per_cycle(),
            "decode_faults": stats.decode_faults,
            "ledger_violations": stats.ledger_violations,
        },
        "caches": {
            "icache_miss_rate": stats.icache.miss_rate(),
            "icache_accesses": stats.icache.accesses(),
            "dcache_miss_rate": stats.dcache.miss_rate(),
            "dcache_accesses": stats.dcache.accesses(),
            "compressions": stats.compression_ops(),
            "rm_bypassed_fills": stats.rm_bypassed_fills,
            "decompressions": stats.icache.decompressions + stats.dcache.decompressions,
        },
        "nvm": { "reads": stats.nvm.reads, "writes": stats.nvm.writes },
        "energy": {
            "total_picojoules": stats.total_energy().picojoules(),
            "harvested_picojoules": stats.harvested.picojoules(),
            "breakdown": breakdown,
        },
    });
    if let Some((regs, rm)) = stats.kagura_state {
        let kagura = json!({
            "r_prev": regs.0, "r_mem": regs.1, "r_adjust": regs.2,
            "r_thres": regs.3, "r_evict": regs.4, "rm_entries": rm,
        });
        if let serde_json::Value::Object(members) = &mut out {
            members.push(("kagura".to_string(), kagura));
        }
    }
    out
}

fn print_report(stats: &SimStats) {
    println!("progress");
    println!("  committed insts : {}", stats.committed_insts);
    println!(
        "  executed insts  : {} (re-executed {})",
        stats.executed_insts,
        stats.executed_insts - stats.committed_insts
    );
    println!("  total cycles    : {} (CPI {:.2})", stats.total_cycles, stats.cpi());
    println!("  sim time        : {}", stats.sim_time);
    println!("  completed       : {}", stats.completed);
    println!("intermittence");
    println!("  power cycles    : {}", stats.power_cycles.len());
    println!("  checkpoints     : {}", stats.checkpoints);
    println!("  insts/cycle     : {:.0}", stats.avg_insts_per_cycle());
    if stats.decode_faults > 0 {
        println!(
            "  decode faults   : {} (DETECTED consistency violations — blocks dropped)",
            stats.decode_faults
        );
    }
    println!("  ledger audit    : {} violation(s)", stats.ledger_violations);
    let lc = stats.load_consistency();
    println!("  cycle stability : {:.1}% of neighbours within 20%", lc.frac_below_20 * 100.0);
    println!("caches");
    println!(
        "  icache          : {:.2}% miss ({} accesses)",
        stats.icache.miss_rate() * 100.0,
        stats.icache.accesses()
    );
    println!(
        "  dcache          : {:.2}% miss ({} accesses)",
        stats.dcache.miss_rate() * 100.0,
        stats.dcache.accesses()
    );
    println!(
        "  compressions    : {} ({} averted in RM), decompressions {}",
        stats.compression_ops(),
        stats.rm_bypassed_fills,
        stats.icache.decompressions + stats.dcache.decompressions
    );
    println!("  nvm             : {} reads, {} writes", stats.nvm.reads, stats.nvm.writes);
    println!("energy");
    for (cat, e) in stats.breakdown.iter() {
        println!(
            "  {:<22}: {:>12} ({:>5.1}%)",
            cat.label(),
            e.to_string(),
            stats.breakdown.fraction(cat) * 100.0
        );
    }
    println!("  {:<22}: {:>12}", "TOTAL", stats.total_energy().to_string());
    println!("  harvested             : {:>12}", stats.harvested.to_string());
    if let Some((regs, rm)) = stats.kagura_state {
        println!("kagura");
        println!(
            "  final registers : R_prev={} R_mem={} R_adjust={} R_thres={} R_evict={}",
            regs.0, regs.1, regs.2, regs.3, regs.4
        );
        println!("  RM entries      : {rm}");
    }
}

/// The `--leakscope FILE` path: runs the timing side-channel attack on
/// the configured compressor × governor (the app positional only labels
/// the stream), writes the JSONL stream, parses it back strictly — every
/// dump is its own schema round-trip check — and renders the parsed
/// report.
fn run_leakscope(
    leak_file: &str,
    app: App,
    args: &Args,
    cfg: &SimConfig,
    injecting: bool,
) -> Result<(), CliError> {
    for conflict in [
        "--emit-events",
        "--chrome-trace",
        "--flight-record",
        "--cachescope",
        "--cachescope-period",
    ] {
        if args.has(conflict) {
            return Err(CliError::Usage(format!(
                "--leakscope cannot combine with {conflict}: one observability stream per run"
            )));
        }
    }
    if injecting {
        return Err(CliError::Usage(
            "--leakscope runs its own probe micro-kernels; --inject-at does not apply".into(),
        ));
    }
    if args.has("--trace-file") {
        return Err(CliError::Usage(
            "--leakscope uses the configured trace kind/seed; --trace-file does not apply".into(),
        ));
    }
    let mut opts = LeakscopeOptions::default();
    if let Some(hex) = args.flag("--leak-secret") {
        let bytes = leakscope::from_hex(hex)
            .map_err(|e| CliError::Config(format!("bad --leak-secret: {e}")))?;
        opts.secret = bytes.try_into().map_err(|_| {
            CliError::Config("--leak-secret must be exactly 8 bytes (16 hex digits)".into())
        })?;
    }
    eprintln!(
        "leakscope: attacking {} under {} on {} (planted secret {})…",
        cfg.algorithm,
        cfg.governor.label(),
        cfg.design,
        leakscope::to_hex(&opts.secret)
    );
    let report = ehs_sim::attack_cell(cfg, &opts);
    let labels = ScopeLabels::new(app.name(), cfg.design.name(), cfg.governor.label());
    let path = Path::new(leak_file);
    leakscope::write_jsonl(path, &labels, &report)
        .map_err(|e| CliError::Runtime(format!("{leak_file}: {e}")))?;
    let parsed = leakscope::parse_leakscope_file(path).map_err(CliError::Runtime)?;
    eprintln!("leakscope stream written to {leak_file}");
    if args.has("--json") {
        let out = serde_json::json!({
            "leakscope": {
                "app": app.name(),
                "algorithm": parsed.algorithm,
                "governor": parsed.labels.governor,
                "supported": parsed.supported,
                "secret": leakscope::to_hex(&parsed.secret),
                "recovered": leakscope::to_hex(&parsed.recovered),
                "recovered_bytes": parsed.stats.recovered_bytes,
                "secret_bytes": parsed.stats.secret_bytes,
                "secret_recovered": parsed.stats.recovered(),
                "guesses": parsed.stats.guesses,
                "retries": parsed.stats.retries,
                "probe_accesses": parsed.stats.probe_accesses,
                "bytes_probed": parsed.stats.bytes_probed,
                "mi_bits": parsed.mi_bits,
                "capacity_bits": parsed.capacity_bits,
                "mi_samples": parsed.mi_samples,
            }
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("report serialize"));
    } else {
        print!("{}", leakscope::render_leak_report(&parsed));
    }
    Ok(())
}

fn run() -> Result<(), CliError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `simrun serve` is its own subcommand with its own flag table.
    if raw.first().map(String::as_str) == Some("serve") {
        return kagura_bench::serve::run_serve(&raw[1..]);
    }
    // Validate the whole vector up front (unknown flags, missing
    // values, stray positionals) so no simulation starts on a command
    // line that doesn't mean what the user typed.
    if let Err(e) = validate_args(&raw, FLAGS, 1) {
        usage();
        return Err(CliError::Usage(e));
    }
    let Some(app_name) = raw.first() else {
        usage();
        return Err(CliError::Usage("missing app".into()));
    };
    let Some(app) = App::from_name(app_name) else {
        usage();
        return Err(CliError::Config(format!("unknown app {app_name:?}")));
    };
    let args = Args(raw);
    let scale: f64 = match args.flag("--scale") {
        Some(s) => s.parse().map_err(|e| CliError::Config(format!("bad scale: {e}")))?,
        None => 1.0,
    };
    if scale <= 0.0 {
        return Err(CliError::Config("scale must be positive".into()));
    }
    let cfg = build_config(&args).map_err(CliError::Config)?;

    let inject = match args.flag("--inject-at") {
        Some(n) => {
            let at: u64 =
                n.parse().map_err(|e| CliError::Config(format!("bad --inject-at: {e}")))?;
            if at == 0 {
                return Err(CliError::Config(
                    "--inject-at is 1-based: the first boundary is 1".into(),
                ));
            }
            if cfg.governor.is_ideal() {
                return Err(CliError::Config(
                    "--inject-at cannot target ideal two-phase governors (oracle replay \
                     realigns work across power cycles)"
                        .into(),
                ));
            }
            let kind = match args.flag("--inject-fault").unwrap_or("power") {
                "power" => FaultKind::PowerFailure,
                "torn" => FaultKind::TornCheckpoint { persist_blocks: 0 },
                "corrupt" => FaultKind::CorruptPayload { bit: 5 },
                other => return Err(CliError::Config(format!("unknown fault kind {other:?}"))),
            };
            Some((at, kind))
        }
        None => {
            if args.has("--inject-fault") {
                return Err(CliError::Usage("--inject-fault needs --inject-at".into()));
            }
            None
        }
    };

    if let Some(leak_file) = args.flag("--leakscope") {
        return run_leakscope(leak_file, app, &args, &cfg, inject.is_some());
    }
    if args.has("--leak-secret") {
        return Err(CliError::Usage("--leak-secret needs --leakscope".into()));
    }

    let trace = match args.flag("--trace-file") {
        Some(path) => {
            let f = File::open(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            // TraceError names the offending line; prepend the file.
            PowerTrace::read_text(BufReader::new(f))
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?
        }
        None => PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 4_000_000),
    };

    let program = app.build(scale);
    eprintln!(
        "running {app} ({} insts) under {} on {} with {} / {} trace…",
        program.len(),
        cfg.governor.label(),
        cfg.design,
        cfg.algorithm,
        cfg.trace_kind
    );
    if let Some((at, kind)) = inject {
        eprintln!("injecting {kind:?} after executed instruction {at}");
    }
    let events_path = args.flag("--emit-events");
    let chrome_path = args.flag("--chrome-trace");
    let flight_path = args.flag("--flight-record");
    let instrumented = events_path.is_some() || chrome_path.is_some() || flight_path.is_some();
    let scope_path = args.flag("--cachescope");
    let scope = match args.flag("--cachescope-period") {
        Some(p) => {
            if scope_path.is_none() {
                return Err(CliError::Usage("--cachescope-period needs --cachescope".into()));
            }
            let n: u64 =
                p.parse().map_err(|e| CliError::Config(format!("bad --cachescope-period: {e}")))?;
            if n == 0 {
                return Err(CliError::Config("--cachescope-period must be positive".into()));
            }
            CachescopeConfig::periodic(n)
        }
        None => CachescopeConfig::default(),
    };
    if scope_path.is_some() && instrumented {
        return Err(CliError::Usage(
            "--cachescope cannot combine with --emit-events/--chrome-trace/\
             --flight-record: one observability stream per run"
                .into(),
        ));
    }
    // Filled on the cachescope path; rendered after the stats report.
    let mut scope_parsed = None;
    let mut scope_report = None;
    let (stats, metrics) = if instrumented {
        let mut sink = TeeSink::default();
        let open = |p: &str| {
            JsonlSink::create(Path::new(p)).map_err(|e| CliError::Runtime(format!("{p}: {e}")))
        };
        if let Some(p) = events_path {
            sink.jsonl = Some(open(p)?);
        }
        if chrome_path.is_some() {
            sink.chrome = Some(ChromeTraceSink::new());
        }
        if let Some(p) = flight_path {
            sink.flight = Some(open(p)?);
        }
        let (stats, metrics) = match inject {
            Some((at, kind)) => {
                let mut sim = Simulator::new(cfg.clone(), &program, &trace);
                sim.arm_fault(at, kind);
                sim.attach_telemetry(&mut sink);
                sim.run_instrumented()
            }
            None => run_program_with_telemetry(&program, &trace, &cfg, &mut sink),
        };
        if let Some(err) = sink.jsonl.as_ref().and_then(JsonlSink::error) {
            return Err(CliError::Runtime(format!(
                "writing {}: {err}",
                events_path.unwrap_or("events")
            )));
        }
        if let Some(err) = sink.flight.as_ref().and_then(JsonlSink::error) {
            return Err(CliError::Runtime(format!(
                "writing {}: {err}",
                flight_path.unwrap_or("flight record")
            )));
        }
        if let (Some(p), Some(chrome)) = (chrome_path, &sink.chrome) {
            chrome.write_to(Path::new(p)).map_err(|e| CliError::Runtime(format!("{p}: {e}")))?;
            eprintln!("chrome trace written to {p}");
        }
        if let Some(p) = events_path {
            eprintln!("event stream written to {p}");
        }
        if let Some(p) = flight_path {
            eprintln!("flight record written to {p}");
        }
        (stats, Some(metrics))
    } else if let Some(scope_file) = scope_path {
        let (stats, report) = match inject {
            Some((at, kind)) => {
                let mut sim = Simulator::new(cfg.clone(), &program, &trace);
                sim.arm_fault(at, kind);
                sim.attach_cachescope(scope);
                sim.run_with_cachescope()
            }
            None => run_program_with_cachescope(&program, &trace, &cfg, scope),
        };
        let labels = ScopeLabels::new(app.name(), cfg.design.name(), cfg.governor.label());
        let path = Path::new(scope_file);
        cachescope::write_jsonl(path, &labels, &report)
            .map_err(|e| CliError::Runtime(format!("{scope_file}: {e}")))?;
        // Parse the freshly-written stream back strictly: every dump is
        // its own schema round-trip check, and the rendered report below
        // comes from the parsed stream, not the in-memory report.
        scope_parsed = Some(cachescope::parse_cachescope_file(path).map_err(CliError::Runtime)?);
        scope_report = Some(report);
        eprintln!("cachescope stream written to {scope_file}");
        (stats, None)
    } else {
        let stats = match inject {
            Some((at, kind)) => {
                let mut sim = Simulator::new(cfg.clone(), &program, &trace);
                sim.arm_fault(at, kind);
                sim.run()
            }
            None => run_program(&program, &trace, &cfg),
        };
        (stats, None)
    };
    if args.has("--json") {
        let mut report = json_report(&stats);
        if let serde_json::Value::Object(members) = &mut report {
            if let Some(m) = &metrics {
                members.push(("metrics".to_string(), m.to_json()));
            }
            if let Some(r) = &scope_report {
                members.push(("cachescope".to_string(), cachescope::report_to_json(r)));
            }
        }
        println!("{}", serde_json::to_string_pretty(&report).expect("stats serialize"));
    } else {
        print_report(&stats);
        if let Some(m) = &metrics {
            let failures = m.snapshots().len().saturating_sub(1);
            println!("telemetry");
            println!(
                "  metric snapshots: {} ({} power-cycle boundaries)",
                m.snapshots().len(),
                failures
            );
        }
        if let Some(parsed) = &scope_parsed {
            print!("{}", cachescope::render_report(parsed));
        }
    }
    if !stats.completed {
        return Err(CliError::Runtime("run hit the simulated-time guard before completing".into()));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        // Exit codes distinguish the failure class (see CliError): 2 for
        // usage errors, 3 for invalid configuration, 1 for runtime
        // failures — scripted callers assert on *why*, not on stderr.
        Err(e) => {
            eprintln!("simrun: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
