//! Cachescope JSON adapters and report rendering.
//!
//! The sim crate deliberately has no serde dependency, so everything a
//! [`CachescopeReport`] needs to cross a process boundary lives here:
//! serialization to a single JSON document (experiment cells) or a JSONL
//! stream (one header line, one `cycle` line per power-cycle boundary,
//! one `snapshot` line per sampled occupancy map, one trailing
//! `summary`), a *strict* parser that names the offending line and field
//! on malformed input — CI's parse-back gate for the cachescope schema —
//! and the per-app text report `repro explain` prints.

use std::path::{Path, PathBuf};

use ehs_cache::SetOccupancy;
use ehs_sim::{
    CachescopeAggregator, CachescopeReport, CycleScope, LatencyAttribution, OccupancySnapshot,
    ScopeCounters,
};
use ehs_telemetry::Histogram;
use serde_json::{json, Value};

/// Run identity carried in the stream header (the algorithm label rides
/// in the report itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeLabels {
    /// Application name.
    pub app: String,
    /// EHS design label.
    pub design: String,
    /// Governor label.
    pub governor: String,
}

impl ScopeLabels {
    /// Labels from anything displayable.
    pub fn new(
        app: impl Into<String>,
        design: impl Into<String>,
        governor: impl Into<String>,
    ) -> Self {
        ScopeLabels { app: app.into(), design: design.into(), governor: governor.into() }
    }
}

fn counters_json(c: &ScopeCounters) -> Value {
    json!({
        "hits": c.hits,
        "compressed_hits": c.compressed_hits,
        "fills": c.fills,
        "compressed_fills": c.compressed_fills,
        "capacity_evictions": c.capacity_evictions,
        "forced_evictions": c.forced_evictions,
        "power_loss_evictions": c.power_loss_evictions,
    })
}

fn latency_json(l: &LatencyAttribution) -> Value {
    json!({
        "tag": l.tag_cycles,
        "decompress": l.decompress_cycles,
        "nvm": l.nvm_cycles,
        "writeback": l.writeback_cycles,
    })
}

/// Histograms serialize as finite `bounds` plus `counts` one longer (the
/// tail is the overflow bucket) — never an `INFINITY` literal, which JSON
/// cannot carry.
fn hist_json(h: &Histogram) -> Value {
    let rows = h.buckets();
    let bounds: Vec<f64> = rows.iter().map(|&(b, _)| b).filter(|b| b.is_finite()).collect();
    let counts: Vec<u64> = rows.iter().map(|&(_, c)| c).collect();
    json!({
        "count": h.count(),
        "mean": h.mean(),
        "p50": h.percentile(0.5),
        "p90": h.percentile(0.9),
        "bounds": bounds,
        "counts": counts,
    })
}

fn aggregator_json(a: &CachescopeAggregator) -> Value {
    json!({
        "counters": counters_json(&a.counters),
        "occupancy": hist_json(&a.occupancy_overall()),
        "ratio": hist_json(&a.ratio),
        "lifetime": hist_json(&a.lifetime),
        "dead_time": hist_json(&a.dead_time),
        "reuse": hist_json(&a.reuse),
    })
}

fn set_occ_json(s: &SetOccupancy) -> Value {
    let blocks: Vec<Value> =
        s.blocks.iter().map(|&(segments, compressed)| json!([segments, compressed])).collect();
    json!({ "set": s.set, "used": s.used_segments, "blocks": blocks })
}

/// One JSON document per experiment cell: final aggregates and latency
/// split, without the row/snapshot streams (those live in the JSONL).
pub fn report_to_json(report: &CachescopeReport) -> Value {
    json!({
        "algorithm": report.algorithm.clone(),
        "icache": aggregator_json(&report.icache),
        "dcache": aggregator_json(&report.dcache),
        "latency": latency_json(&report.latency),
        "boundary_rows": report.cycles.len(),
        "occupancy_snapshots": report.snapshots.len(),
    })
}

/// The full report as a JSONL stream: `cachescope` header, `cycle` rows,
/// `snapshot` rows, trailing `summary`.
pub fn report_to_jsonl(labels: &ScopeLabels, report: &CachescopeReport) -> String {
    let mut lines: Vec<Value> =
        Vec::with_capacity(2 + report.cycles.len() + report.snapshots.len());
    lines.push(json!({
        "kind": "cachescope",
        "app": labels.app.clone(),
        "design": labels.design.clone(),
        "governor": labels.governor.clone(),
        "algorithm": report.algorithm.clone(),
    }));
    for row in &report.cycles {
        lines.push(json!({
            "kind": "cycle",
            "cycle": row.cycle,
            "icache": counters_json(&row.icache),
            "dcache": counters_json(&row.dcache),
            "latency": latency_json(&row.latency),
        }));
    }
    for snap in &report.snapshots {
        let sets = |occ: &[SetOccupancy]| occ.iter().map(set_occ_json).collect::<Vec<_>>();
        lines.push(json!({
            "kind": "snapshot",
            "inst_index": snap.inst_index,
            "cycle": snap.cycle,
            "icache": sets(&snap.icache),
            "dcache": sets(&snap.dcache),
        }));
    }
    lines.push(json!({
        "kind": "summary",
        "icache": aggregator_json(&report.icache),
        "dcache": aggregator_json(&report.dcache),
        "latency": latency_json(&report.latency),
    }));
    lines.iter().map(|v| serde_json::to_string(v).expect("serializable") + "\n").collect()
}

/// Atomically writes the JSONL stream for one run.
pub fn write_jsonl(
    path: &Path,
    labels: &ScopeLabels,
    report: &CachescopeReport,
) -> std::io::Result<()> {
    crate::fsutil::atomic_write(path, report_to_jsonl(labels, report).as_bytes())
}

/// A strictly-parsed cachescope stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedScope {
    /// Header identity.
    pub labels: ScopeLabels,
    /// Compression algorithm label from the header.
    pub algorithm: String,
    /// Boundary rows, in stream order.
    pub cycles: Vec<CycleScope>,
    /// Sampled occupancy maps, in stream order.
    pub snapshots: Vec<OccupancySnapshot>,
    /// The validated `summary` line, kept raw for rendering.
    pub summary: Value,
}

/// Walks a dotted path (`"dcache.hits"`), so errors name the exact
/// nested field.
pub(crate) fn field<'a>(v: &'a Value, path: &str) -> Result<&'a Value, String> {
    let mut cur = v;
    for k in path.split('.') {
        cur = cur.get(k).ok_or_else(|| format!("missing field `{path}`"))?;
    }
    Ok(cur)
}

pub(crate) fn u(v: &Value, path: &str) -> Result<u64, String> {
    field(v, path)?.as_u64().ok_or_else(|| format!("field `{path}` is not an unsigned integer"))
}

pub(crate) fn f(v: &Value, path: &str) -> Result<f64, String> {
    field(v, path)?.as_f64().ok_or_else(|| format!("field `{path}` is not a number"))
}

pub(crate) fn s(v: &Value, path: &str) -> Result<String, String> {
    Ok(field(v, path)?
        .as_str()
        .ok_or_else(|| format!("field `{path}` is not a string"))?
        .to_string())
}

pub(crate) fn arr<'a>(v: &'a Value, path: &str) -> Result<&'a [Value], String> {
    field(v, path)?.as_array().ok_or_else(|| format!("field `{path}` is not an array"))
}

fn counters_from(v: &Value, prefix: &str) -> Result<ScopeCounters, String> {
    let key = |k: &str| format!("{prefix}.{k}");
    Ok(ScopeCounters {
        hits: u(v, &key("hits"))?,
        compressed_hits: u(v, &key("compressed_hits"))?,
        fills: u(v, &key("fills"))?,
        compressed_fills: u(v, &key("compressed_fills"))?,
        capacity_evictions: u(v, &key("capacity_evictions"))?,
        forced_evictions: u(v, &key("forced_evictions"))?,
        power_loss_evictions: u(v, &key("power_loss_evictions"))?,
    })
}

fn latency_from(v: &Value, prefix: &str) -> Result<LatencyAttribution, String> {
    let key = |k: &str| format!("{prefix}.{k}");
    Ok(LatencyAttribution {
        tag_cycles: u(v, &key("tag"))?,
        decompress_cycles: u(v, &key("decompress"))?,
        nvm_cycles: u(v, &key("nvm"))?,
        writeback_cycles: u(v, &key("writeback"))?,
    })
}

fn occupancy_from(v: &Value, prefix: &str) -> Result<Vec<SetOccupancy>, String> {
    let mut out = Vec::new();
    for (i, set) in arr(v, prefix)?.iter().enumerate() {
        let at = |k: &str| format!("{prefix}[{i}].{k}");
        let mut blocks = Vec::new();
        for (j, b) in arr(set, "blocks")
            .map_err(|_| format!("field `{}` is not an array", at("blocks")))?
            .iter()
            .enumerate()
        {
            let pair = b.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                format!("field `{}[{j}]` is not a [segments, compressed] pair", at("blocks"))
            })?;
            let segments = pair[0].as_u64().ok_or_else(|| {
                format!("field `{}[{j}][0]` is not an unsigned integer", at("blocks"))
            })?;
            let compressed = pair[1]
                .as_bool()
                .ok_or_else(|| format!("field `{}[{j}][1]` is not a boolean", at("blocks")))?;
            blocks.push((segments as u32, compressed));
        }
        out.push(SetOccupancy {
            set: u(set, "set")
                .map_err(|_| format!("field `{}` is missing or mistyped", at("set")))?
                as u32,
            used_segments: u(set, "used")
                .map_err(|_| format!("field `{}` is missing or mistyped", at("used")))?
                as u32,
            blocks,
        });
    }
    Ok(out)
}

/// Validates one aggregator object of a `summary` line (histogram shape
/// included), naming the offending field.
fn check_aggregator(v: &Value, prefix: &str) -> Result<(), String> {
    counters_from(v, &format!("{prefix}.counters"))?;
    for hist in ["occupancy", "ratio", "lifetime", "dead_time", "reuse"] {
        let key = |k: &str| format!("{prefix}.{hist}.{k}");
        u(v, &key("count"))?;
        f(v, &key("mean"))?;
        f(v, &key("p50"))?;
        f(v, &key("p90"))?;
        let bounds = arr(v, &key("bounds"))?;
        let counts = arr(v, &key("counts"))?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "field `{}` must be one longer than `{}` ({} vs {})",
                key("counts"),
                key("bounds"),
                counts.len(),
                bounds.len()
            ));
        }
    }
    Ok(())
}

/// Strictly parses one cachescope JSONL stream; the error names the
/// 1-based line and the offending field.
pub fn parse_cachescope_str(text: &str) -> Result<ParsedScope, (usize, String)> {
    let mut header: Option<(ScopeLabels, String)> = None;
    let mut cycles = Vec::new();
    let mut snapshots = Vec::new();
    let mut summary: Option<Value> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| (lineno, e);
        let v: Value = serde_json::from_str(line).map_err(|e| at(format!("invalid JSON: {e}")))?;
        if summary.is_some() {
            return Err(at("unexpected line after the `summary` line".into()));
        }
        let kind = s(&v, "kind").map_err(at)?;
        if header.is_none() && kind != "cachescope" {
            return Err(at(format!("first line must have kind `cachescope`, got `{kind}`")));
        }
        match kind.as_str() {
            "cachescope" => {
                if header.is_some() {
                    return Err(at("duplicate `cachescope` header line".into()));
                }
                let labels = ScopeLabels {
                    app: s(&v, "app").map_err(at)?,
                    design: s(&v, "design").map_err(at)?,
                    governor: s(&v, "governor").map_err(at)?,
                };
                header = Some((labels, s(&v, "algorithm").map_err(at)?));
            }
            "cycle" => cycles.push(CycleScope {
                cycle: u(&v, "cycle").map_err(at)?,
                icache: counters_from(&v, "icache").map_err(at)?,
                dcache: counters_from(&v, "dcache").map_err(at)?,
                latency: latency_from(&v, "latency").map_err(at)?,
            }),
            "snapshot" => snapshots.push(OccupancySnapshot {
                inst_index: u(&v, "inst_index").map_err(at)?,
                cycle: u(&v, "cycle").map_err(at)?,
                icache: occupancy_from(&v, "icache").map_err(at)?,
                dcache: occupancy_from(&v, "dcache").map_err(at)?,
            }),
            "summary" => {
                check_aggregator(&v, "icache").map_err(at)?;
                check_aggregator(&v, "dcache").map_err(at)?;
                latency_from(&v, "latency").map_err(at)?;
                summary = Some(v);
            }
            other => return Err(at(format!("unknown line kind `{other}`"))),
        }
    }
    let last = text.lines().count().max(1);
    let (labels, algorithm) =
        header.ok_or((last, "empty stream: missing `cachescope` header line".to_string()))?;
    let summary = summary.ok_or((last, "stream ended without a `summary` line".to_string()))?;
    if cycles.is_empty() {
        return Err((last, "stream has no `cycle` rows (the end-of-run row is mandatory)".into()));
    }
    Ok(ParsedScope { labels, algorithm, cycles, snapshots, summary })
}

/// [`parse_cachescope_str`] over a file, prefixing `file:line:`.
pub fn parse_cachescope_file(path: &Path) -> Result<ParsedScope, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_cachescope_str(&text).map_err(|(line, msg)| format!("{}:{line}: {msg}", path.display()))
}

/// Finds every `cachescope_<app>.jsonl` under `dir`, sorted by app name.
pub fn discover_cachescope_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(app) = name.strip_prefix("cachescope_").and_then(|n| n.strip_suffix(".jsonl")) {
            found.push((app.to_string(), entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// Fraction → one timeline glyph, coarse utilization ramp.
fn utilization_glyph(frac: f64) -> char {
    const RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let i = (frac.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[i]
}

/// Max columns the occupancy timeline prints; longer runs are strided.
const TIMELINE_COLS: usize = 64;

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

/// Renders the per-app cache report: counters, eviction breakdown,
/// compressibility and lifetime distributions, latency split, occupancy
/// timeline, and per-cycle activity from the boundary rows.
pub fn render_report(parsed: &ParsedScope) -> String {
    let mut out = String::new();
    let mut w = |s: String| out.push_str(&(s + "\n"));
    let p = &parsed.labels;
    w(format!("=== {} cachescope ===", p.app));
    w(format!("  run: {} on {} under {}", parsed.algorithm, p.design, p.governor));

    // Final cumulative state is the last boundary row (the end-of-run
    // row), which the summary aggregates must agree with.
    let last = parsed.cycles.last().expect("parser guarantees >= 1 row");
    for (name, c) in [("icache", &last.icache), ("dcache", &last.dcache)] {
        w(format!(
            "  {name}: {} hit(s) ({:.1}% on compressed lines), {} fill(s) ({:.1}% stored compressed)",
            c.hits,
            pct(c.compressed_hits, c.hits),
            c.fills,
            pct(c.compressed_fills, c.fills),
        ));
    }
    let d = &last.dcache;
    w(format!(
        "  evictions (dcache): {} capacity / {} dead-block / {} power-loss",
        d.capacity_evictions, d.forced_evictions, d.power_loss_evictions
    ));

    let l = &last.latency;
    let total = l.total();
    w(format!(
        "  latency: {total} cycle(s) = {:.1}% tag + {:.1}% decompress + {:.1}% nvm + {:.1}% writeback",
        pct(l.tag_cycles, total),
        pct(l.decompress_cycles, total),
        pct(l.nvm_cycles, total),
        pct(l.writeback_cycles, total),
    ));

    // Distribution lines straight off the validated summary.
    let hist = |prefix: &str| -> (u64, f64, f64, f64) {
        let g = |k: &str| f(&parsed.summary, &format!("{prefix}.{k}")).unwrap_or(f64::NAN);
        (u(&parsed.summary, &format!("{prefix}.count")).unwrap_or(0), g("mean"), g("p50"), g("p90"))
    };
    let (n, mean, p50, p90) = hist("dcache.ratio");
    if n > 0 {
        w(format!(
            "  compressibility (dcache): {n} compressed fill(s), ratio mean {mean:.2} p50 {p50:.2} p90 {p90:.2}"
        ));
    } else {
        w("  compressibility (dcache): no compressed fills".to_string());
    }
    let (n, mean, _, p90) = hist("dcache.occupancy");
    w(format!(
        "  occupancy (dcache): mean {mean:.1} segment(s) in use, p90 {p90:.1} over {n} fill(s)"
    ));
    let (_, _, life_p50, life_p90) = hist("dcache.lifetime");
    let (_, _, dead_p50, _) = hist("dcache.dead_time");
    let (reuse_n, _, reuse_p50, _) = hist("dcache.reuse");
    w(format!(
        "  block lifetime (dcache): p50 {life_p50:.0} p90 {life_p90:.0} tick(s), dead time p50 {dead_p50:.0}, sampled reuse p50 {reuse_p50:.0} ({reuse_n} sample(s))"
    ));

    // Occupancy timeline: one glyph per (strided) snapshot, dcache
    // utilization summed over sets against the summary's segment bound.
    if !parsed.snapshots.is_empty() {
        let cap_per_set = arr(&parsed.summary, "dcache.occupancy.bounds")
            .ok()
            .and_then(|b| b.last())
            .and_then(Value::as_f64)
            .unwrap_or(1.0)
            .max(1.0);
        let stride = parsed.snapshots.len().div_ceil(TIMELINE_COLS);
        let line: String = parsed
            .snapshots
            .iter()
            .step_by(stride)
            .map(|snap| {
                let used: u64 = snap.dcache.iter().map(|s| u64::from(s.used_segments)).sum();
                utilization_glyph(used as f64 / (cap_per_set * snap.dcache.len().max(1) as f64))
            })
            .collect();
        w(format!(
            "  occupancy timeline ({} snapshot(s), 1 col = {} sample(s)): {line}",
            parsed.snapshots.len(),
            stride
        ));
    }

    // Per-cycle activity: boundary rows are cumulative, so consecutive
    // diffs give each power cycle's hit count.
    let per_cycle: Vec<u64> =
        parsed.cycles.windows(2).map(|pair| pair[1].dcache.hits - pair[0].dcache.hits).collect();
    if per_cycle.is_empty() {
        w("  1 boundary row (no power failure before completion)".to_string());
    } else {
        let min = per_cycle.iter().min().copied().unwrap_or(0);
        let max = per_cycle.iter().max().copied().unwrap_or(0);
        let mean = per_cycle.iter().sum::<u64>() as f64 / per_cycle.len() as f64;
        w(format!(
            "  per-cycle dcache hits over {} boundary row(s): min {min} / mean {mean:.0} / max {max}",
            parsed.cycles.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_cache::{CacheConfig, CacheProbe, EvictionReason, ProbeEviction, ProbeFill, ProbeHit};
    use ehs_compress::Algorithm;
    use ehs_model::CacheParams;

    fn sample_report() -> CachescopeReport {
        let cfg = CacheConfig::new(CacheParams::table1(), Algorithm::Bdi);
        let mut dcache = CachescopeAggregator::new(&cfg);
        for _ in 0..130 {
            dcache.on_hit(ProbeHit { set: 0, was_compressed: false, segments: 4, reuse: 1 });
        }
        dcache.on_fill(ProbeFill {
            set: 1,
            segments: 2,
            full_segments: 4,
            stored_compressed: true,
            used_after: 6,
            blocks_after: 3,
        });
        dcache.on_evict(ProbeEviction {
            set: 1,
            reason: EvictionReason::PowerLoss,
            segments: 2,
            was_compressed: true,
            lifetime: 40,
            idle: 3,
        });
        let icache = CachescopeAggregator::new(&cfg);
        let latency = LatencyAttribution {
            tag_cycles: 100,
            decompress_cycles: 10,
            nvm_cycles: 50,
            writeback_cycles: 20,
        };
        let mid = CycleScope {
            cycle: 0,
            icache: icache.counters(),
            dcache: ScopeCounters { hits: 60, ..dcache.counters() },
            latency: LatencyAttribution { tag_cycles: 40, ..Default::default() },
        };
        let end =
            CycleScope { cycle: 1, icache: icache.counters(), dcache: dcache.counters(), latency };
        let snap = OccupancySnapshot {
            inst_index: 512,
            cycle: 0,
            icache: vec![SetOccupancy { set: 0, used_segments: 4, blocks: vec![(4, false)] }],
            dcache: vec![SetOccupancy {
                set: 0,
                used_segments: 3,
                blocks: vec![(2, true), (1, true)],
            }],
        };
        CachescopeReport {
            algorithm: "BDI".into(),
            icache,
            dcache,
            latency,
            cycles: vec![mid, end],
            snapshots: vec![snap],
        }
    }

    fn labels() -> ScopeLabels {
        ScopeLabels::new("sha", "NVSRAMCache", "acc_kagura")
    }

    #[test]
    fn jsonl_round_trips_through_the_strict_parser() {
        let report = sample_report();
        let text = report_to_jsonl(&labels(), &report);
        let parsed = parse_cachescope_str(&text).expect("generated stream parses");
        assert_eq!(parsed.labels, labels());
        assert_eq!(parsed.algorithm, "BDI");
        assert_eq!(parsed.cycles, report.cycles);
        assert_eq!(parsed.snapshots, report.snapshots);
        assert_eq!(
            u(&parsed.summary, "dcache.counters.hits").unwrap(),
            report.dcache.counters.hits
        );
    }

    #[test]
    fn strict_parse_names_line_and_field() {
        let text = report_to_jsonl(&labels(), &sample_report());
        // Corrupt the second line (the first `cycle` row): a single-bit
        // flip turns `cycle` into `cycme` ('l' ^ 0x01 = 'm'), so the row
        // is valid JSON but the field is gone.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = lines[1].replacen("\"cycle\":", "\"cycme\":", 1);
        let (line, err) = parse_cachescope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 2);
        assert!(err.contains("`cycle`"), "error must name the field: {err}");

        // Truncating a line mid-token is an invalid-JSON error on that line.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let cut = lines[2].len() / 2;
        lines[2].truncate(cut);
        let (line, err) = parse_cachescope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 3);
        assert!(err.contains("invalid JSON"), "{err}");

        // A nested counter field mistyped inside the summary line.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let n = lines.len();
        lines[n - 1] = lines[n - 1].replacen("\"fills\":1", "\"fills\":\"one\"", 1);
        let (line, err) = parse_cachescope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, n);
        assert!(err.contains("`dcache.counters.fills`"), "{err}");
    }

    #[test]
    fn structural_defects_are_rejected() {
        let text = report_to_jsonl(&labels(), &sample_report());
        // Dropping the header: first line must be the header.
        let body: Vec<&str> = text.lines().skip(1).collect();
        let (_, err) = parse_cachescope_str(&body.join("\n")).unwrap_err();
        assert!(err.contains("first line"), "{err}");
        // Dropping the summary: incomplete stream.
        let n = text.lines().count();
        let head: Vec<&str> = text.lines().take(n - 1).collect();
        let (_, err) = parse_cachescope_str(&head.join("\n")).unwrap_err();
        assert!(err.contains("summary"), "{err}");
        // Unknown kind.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.insert(1, "{\"kind\": \"mystery\"}".into());
        let (line, err) = parse_cachescope_str(&lines.join("\n")).unwrap_err();
        assert_eq!(line, 2);
        assert!(err.contains("unknown line kind `mystery`"), "{err}");
    }

    #[test]
    fn report_covers_every_section() {
        let parsed = parse_cachescope_str(&report_to_jsonl(&labels(), &sample_report())).unwrap();
        let report = render_report(&parsed);
        assert!(report.contains("=== sha cachescope ==="));
        assert!(report.contains("BDI on NVSRAMCache under acc_kagura"));
        assert!(report.contains("130 hit(s)"));
        assert!(report.contains("0 capacity / 0 dead-block / 1 power-loss"));
        assert!(report.contains("180 cycle(s)"), "latency total: {report}");
        assert!(report.contains("compressibility (dcache): 1 compressed fill(s)"));
        assert!(report.contains("occupancy timeline (1 snapshot(s)"));
        assert!(report.contains("per-cycle dcache hits over 2 boundary row(s)"));
        assert!(report.contains("min 70 / mean 70 / max 70"), "{report}");
    }

    #[test]
    fn single_document_json_has_the_cell_fields() {
        let doc = report_to_json(&sample_report());
        assert_eq!(doc.get("algorithm").and_then(Value::as_str), Some("BDI"));
        assert_eq!(u(&doc, "dcache.counters.hits").unwrap(), 130);
        assert_eq!(u(&doc, "latency.nvm").unwrap(), 50);
        assert_eq!(u(&doc, "boundary_rows").unwrap(), 2);
        assert_eq!(u(&doc, "occupancy_snapshots").unwrap(), 1);
    }
}
