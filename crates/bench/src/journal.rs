//! Append-only journal of completed experiment cells, the backbone of
//! `repro --resume`.
//!
//! The journal lives at `<out_dir>/run_journal.jsonl`. Line one is a
//! header fingerprinting the run configuration (scale, app sets); every
//! further line records one experiment that finished *after* its JSON
//! artifact was atomically renamed into place, together with the failure
//! records its grid produced. The write ordering (artifact rename →
//! journal append → fsync) means a journaled id always has a complete
//! artifact on disk, so a resumed run can skip it outright and still
//! converge to byte-identical output — including `failures.json`, which
//! is reconstructed from the journaled failure records of skipped cells.
//!
//! A SIGKILL mid-append can tear at most the final line; [`RunJournal::resume`]
//! tolerates (and drops) exactly that line.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{json, Value};

use crate::fsutil::{self, JournalFormat};

/// Journal file name inside the results directory.
pub const JOURNAL_FILE: &str = "run_journal.jsonl";

/// Header format shared with the other journals via
/// [`fsutil::resume_journal`].
const FORMAT: JournalFormat = JournalFormat {
    name: "kagura-repro",
    version: 1,
    log_tag: "resume",
    torn_note: "its experiment will re-run",
    mismatch_hint: "resume with the original --scale/--apps or start a fresh --out",
};

/// The append-only run journal (see module docs).
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: File,
    /// Completed experiment id → the failure records its run produced.
    completed: BTreeMap<String, Vec<Value>>,
}

impl RunJournal {
    /// Starts a fresh journal in `out_dir`, truncating any previous one,
    /// and writes the fingerprint header.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the journal file.
    pub fn create(out_dir: &Path, fingerprint: Value) -> io::Result<Self> {
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(JOURNAL_FILE);
        let file = fsutil::create_journal(&path, &FORMAT, &fingerprint)?;
        Ok(RunJournal { path, file, completed: BTreeMap::new() })
    }

    /// Reopens an existing journal for appending, returning the set of
    /// already-completed cells. A missing journal degrades to
    /// [`RunJournal::create`]; a torn final line (killed mid-append) is
    /// dropped.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] when the header is
    /// unreadable or fingerprints the journal for a *different* run
    /// configuration — resuming under changed parameters would splice
    /// incompatible results into one output tree.
    pub fn resume(out_dir: &Path, fingerprint: Value) -> io::Result<Self> {
        let path = out_dir.join(JOURNAL_FILE);
        let Some((file, records)) = fsutil::resume_journal(&path, &FORMAT, &fingerprint)? else {
            return Self::create(out_dir, fingerprint);
        };
        let mut completed = BTreeMap::new();
        for cell in records {
            if let Some(id) = cell.get("id").and_then(Value::as_str) {
                let failures = cell
                    .get("failures")
                    .and_then(Value::as_array)
                    .map(<[Value]>::to_vec)
                    .unwrap_or_default();
                completed.insert(id.to_string(), failures);
            }
        }
        Ok(RunJournal { path, file, completed })
    }

    /// Whether `id` already completed (in this process or a journaled
    /// predecessor).
    pub fn is_done(&self, id: &str) -> bool {
        self.completed.contains_key(id)
    }

    /// Count of completed cells.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// `true` when nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Journals one completed experiment with its failure records,
    /// fsyncing before returning: once this call comes back the cell is
    /// durable and will be skipped by any future resume.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the append or sync.
    pub fn record(&mut self, id: &str, failures: Vec<Value>) -> io::Result<()> {
        let cell = json!({ "id": id, "failures": failures.clone() });
        fsutil::append_journal_record(&mut self.file, &cell)?;
        self.completed.insert(id.to_string(), failures);
        Ok(())
    }

    /// Every failure record across all completed cells, in deterministic
    /// (id-sorted, then submission) order — the input to `failures.json`.
    pub fn all_failures(&self) -> Vec<Value> {
        self.completed.values().flat_map(|v| v.iter().cloned()).collect()
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kagura_journal_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_round_trips_completed_cells() {
        let dir = tmp("roundtrip");
        let fp = json!({"scale": 0.1});
        {
            let mut j = RunJournal::create(&dir, fp.clone()).unwrap();
            j.record("fig3", vec![]).unwrap();
            j.record("fig13", vec![json!({"app": "sha", "kind": "panic"})]).unwrap();
        }
        let j = RunJournal::resume(&dir, fp).unwrap();
        assert!(j.is_done("fig3") && j.is_done("fig13"));
        assert!(!j.is_done("fig14"));
        assert_eq!(j.len(), 2);
        assert_eq!(j.all_failures(), vec![json!({"app": "sha", "kind": "panic"})]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_fingerprint() {
        let dir = tmp("fingerprint");
        RunJournal::create(&dir, json!({"scale": 0.1})).unwrap();
        let err = RunJournal::resume(&dir, json!({"scale": 0.2})).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("fingerprint"), "unhelpful error: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_tolerates_a_torn_final_line_only() {
        let dir = tmp("torn");
        let fp = json!({"scale": 0.1});
        {
            let mut j = RunJournal::create(&dir, fp.clone()).unwrap();
            j.record("fig3", vec![]).unwrap();
        }
        // Simulate SIGKILL mid-append: a partial record with no newline.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
        f.write_all(b"{\"id\":\"fig1").unwrap();
        drop(f);
        let mut j = RunJournal::resume(&dir, fp.clone()).unwrap();
        assert!(j.is_done("fig3"));
        assert_eq!(j.len(), 1, "torn cell must not count as done");
        // The torn tail must be truncated off disk, not just skipped:
        // appending after it would otherwise glue the next record onto
        // the partial line and hard-fail every later resume.
        j.record("fig14", vec![]).unwrap();
        drop(j);
        let j = RunJournal::resume(&dir, fp.clone()).unwrap();
        assert!(j.is_done("fig3") && j.is_done("fig14"));
        assert_eq!(j.len(), 2, "append after a torn tail must survive a second resume");
        drop(j);
        // Corruption *before* the end is a hard error, not silent loss.
        let header =
            json!({"journal": FORMAT.name, "version": FORMAT.version, "fingerprint": fp.clone()});
        fs::write(
            dir.join(JOURNAL_FILE),
            format!(
                "{}\nnot json\n{}\n",
                serde_json::to_string(&header).unwrap(),
                serde_json::to_string(&json!({"id": "fig3", "failures": []})).unwrap(),
            ),
        )
        .unwrap();
        assert!(RunJournal::resume(&dir, fp).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_journal_starts_fresh() {
        let dir = tmp("fresh");
        let j = RunJournal::resume(&dir, json!({"scale": 0.1})).unwrap();
        assert!(j.is_empty());
        assert!(j.path().exists(), "resume must leave a journal behind");
        fs::remove_dir_all(&dir).unwrap();
    }
}
