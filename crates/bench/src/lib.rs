//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§VIII).
//!
//! Each experiment is a function `fn(&ExpContext) -> serde_json::Value`
//! registered in [`experiments::REGISTRY`]; the `repro` binary dispatches
//! on experiment id (`fig13`, `table3`, …), prints the same rows/series
//! the paper reports, and writes machine-readable JSON under `results/`.
//!
//! Absolute numbers will not match the authors' gem5+McPAT testbed — the
//! substrate here is the from-scratch simulator in `ehs-sim` — but the
//! *shape* of every result (who wins, by roughly what factor, where
//! crossovers fall) is the reproduction target; see EXPERIMENTS.md.

pub mod cachescope;
pub mod cli;
pub mod experiments;
pub mod explain;
pub mod fleet;
pub mod fsutil;
pub mod journal;
pub mod leakscope;
pub mod serve;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ehs_sim::{SimStats, StepBudget};
use ehs_workloads::App;
use serde_json::Value;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Workload scale factor (1.0 = full-length kernels).
    pub scale: f64,
    /// Applications used by the main-result figures.
    pub apps: Vec<App>,
    /// Smaller application set used by the sensitivity sweeps.
    pub sens_apps: Vec<App>,
    /// Where JSON results land.
    pub out_dir: PathBuf,
    /// When set (`repro --telemetry DIR`), experiments that capture event
    /// streams also dump them here (JSONL), and the harness writes its
    /// timing spans to `DIR/spans.json`.
    pub telemetry_dir: Option<PathBuf>,
    /// Suppresses the per-experiment progress lines on stderr
    /// (`repro --quiet`).
    pub quiet: bool,
    /// Per-job watchdog applied to every grid cell whose config does not
    /// set its own budget (`repro --job-timeout` / `--job-max-insts`).
    pub job_budget: StepBudget,
    /// The experiment id currently running under this context, for
    /// attributing failure records; set by the `repro` driver.
    pub exp_id: Option<String>,
    /// Failure manifest collector: [`experiments`] grid runners append
    /// one record per failed cell here instead of aborting. Shared so
    /// the driver can drain it after the experiment returns.
    pub failures: Arc<Mutex<Vec<Value>>>,
    /// Run every grid cell with strict energy-ledger auditing
    /// (`repro --audit-strict`): a conservation violation aborts the
    /// cell (contained as a failed-cell record) instead of counting.
    pub audit_strict: bool,
    /// Power cycles simulated by this experiment's grid cells so far;
    /// the driver reads (and resets) it for the progress line.
    pub cycle_total: Arc<AtomicU64>,
    /// Energy-ledger conservation violations across this experiment's
    /// grid cells so far (lenient mode counts instead of aborting).
    pub violation_total: Arc<AtomicU64>,
    /// Fleet campaign parameters (`repro fleet --fleet-size/--fleet-seed/
    /// --fleet-shard`); only the `fleet` experiment reads them.
    pub fleet: fleet::FleetParams,
    /// This invocation is `repro --resume`: experiments with their own
    /// intra-experiment journal (fleet shards) reopen it instead of
    /// truncating.
    pub resume: bool,
}

impl ExpContext {
    /// Default context: all 20 apps for the headline figures, a
    /// representative 8-app subset for sweeps, results under `results/`.
    pub fn new(scale: f64) -> Self {
        ExpContext {
            scale,
            apps: App::ALL.to_vec(),
            sens_apps: vec![
                App::Jpegd,
                App::Jpeg,
                App::G721d,
                App::Gsm,
                App::Mpeg2d,
                App::Blowfish,
                App::Sha,
                App::Typeset,
            ],
            out_dir: PathBuf::from("results"),
            telemetry_dir: None,
            quiet: false,
            job_budget: StepBudget::UNLIMITED,
            exp_id: None,
            failures: Arc::new(Mutex::new(Vec::new())),
            audit_strict: false,
            cycle_total: Arc::new(AtomicU64::new(0)),
            violation_total: Arc::new(AtomicU64::new(0)),
            fleet: fleet::FleetParams::default(),
            resume: false,
        }
    }

    /// Writes `value` as pretty JSON to `<out_dir>/<id>.json`, atomically
    /// (tmp sibling + fsync + rename): a run killed mid-save leaves either
    /// the previous artifact or the new one, never a torn file.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or the file not written —
    /// losing experiment output silently would be worse.
    pub fn save(&self, id: &str, value: &Value) {
        fs::create_dir_all(&self.out_dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", self.out_dir.display()));
        let path = self.out_dir.join(format!("{id}.json"));
        let text = serde_json::to_string_pretty(value).expect("serializable");
        fsutil::atomic_write(&path, text.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("  [saved {}]", path.display());
    }

    /// Appends one failure record to the shared manifest.
    pub fn record_failure(&self, record: Value) {
        self.failures.lock().unwrap_or_else(|e| e.into_inner()).push(record);
    }

    /// Drains the failure records collected so far (driver-side, after an
    /// experiment returns).
    pub fn take_failures(&self) -> Vec<Value> {
        std::mem::take(&mut *self.failures.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Folds one finished grid cell into the running power-cycle and
    /// ledger-violation totals surfaced by the driver's progress line.
    pub fn add_cell_stats(&self, stats: &SimStats) {
        self.cycle_total.fetch_add(stats.power_cycle_count, Ordering::Relaxed);
        self.violation_total.fetch_add(stats.ledger_violations, Ordering::Relaxed);
    }

    /// Reads and clears the (power cycles, ledger violations) totals.
    pub fn take_cell_totals(&self) -> (u64, u64) {
        (
            self.cycle_total.swap(0, Ordering::Relaxed),
            self.violation_total.swap(0, Ordering::Relaxed),
        )
    }
}

impl Default for ExpContext {
    fn default() -> Self {
        Self::new(0.3)
    }
}

/// Maps `f` over `items` on the shared simulation worker pool
/// ([`ehs_sim::parallel`]), preserving order.
///
/// Each item counts against the process-wide `--jobs` budget, so nesting
/// this inside concurrently-running experiments cannot oversubscribe the
/// machine. Result order is always submission order — output is
/// byte-identical for any job count.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ehs_sim::parallel::map(items, |item| f(&item))
}

/// Geometric mean (items must be positive).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "gmean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Geometric mean over the finite, strictly positive entries only,
/// returning how many entries were excluded. Zero and non-finite rows
/// (e.g. `reference_ips == 0` under `simbench --skip-reference`) would
/// otherwise poison the aggregate — the old clamp-to-1e-12 behaviour
/// dragged a geomean of healthy multi-M IPS rows toward zero.
/// Returns `(0.0, excluded)` when nothing qualifies.
pub fn gmean_filtered(xs: impl IntoIterator<Item = f64>) -> (f64, u64) {
    let (mut sum, mut n, mut excluded) = (0.0f64, 0u64, 0u64);
    for x in xs {
        if x.is_finite() && x > 0.0 {
            sum += x.ln();
            n += 1;
        } else {
            excluded += 1;
        }
    }
    if n == 0 {
        (0.0, excluded)
    } else {
        ((sum / n as f64).exp(), excluded)
    }
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn amean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Formats a ratio as a signed percentage gain, e.g. `1.0474` → `+4.74%`.
pub fn pct_gain(ratio: f64) -> String {
    format!("{:+.2}%", (ratio - 1.0) * 100.0)
}

/// Prints a simple fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Ensures `dir` exists and returns it (test helper).
pub fn ensure_dir(dir: &Path) -> &Path {
    fs::create_dir_all(dir).expect("create dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn means() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(amean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn filtered_gmean_skips_poison_rows() {
        // The degenerate rows must not drag the aggregate down.
        let (g, excluded) = gmean_filtered([1.0, 4.0, 0.0, f64::NAN, f64::INFINITY, -3.0]);
        assert!((g - 2.0).abs() < 1e-12, "got {g}");
        assert_eq!(excluded, 4);
        assert_eq!(gmean_filtered([0.0, f64::NAN]), (0.0, 2));
        assert_eq!(gmean_filtered([]), (0.0, 0));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_gain(1.0474), "+4.74%");
        assert_eq!(pct_gain(0.98), "-2.00%");
    }

    #[test]
    fn context_defaults() {
        let ctx = ExpContext::default();
        assert_eq!(ctx.apps.len(), 20);
        assert_eq!(ctx.sens_apps.len(), 8);
        assert!(ctx.scale > 0.0);
        assert!(ctx.telemetry_dir.is_none());
        assert!(!ctx.quiet);
        assert!(ctx.job_budget.is_unlimited());
        assert!(ctx.exp_id.is_none());
        assert!(!ctx.audit_strict);
        assert!(!ctx.resume);
        assert_eq!(ctx.fleet, fleet::FleetParams::default());
        assert!(ctx.fleet.population > 0 && ctx.fleet.shard_size > 0);
        ctx.record_failure(serde_json::json!({"kind": "panic"}));
        assert_eq!(ctx.take_failures().len(), 1);
        assert!(ctx.take_failures().is_empty(), "take must drain");
        ctx.add_cell_stats(&SimStats {
            power_cycle_count: 3,
            ledger_violations: 1,
            ..SimStats::default()
        });
        assert_eq!(ctx.take_cell_totals(), (3, 1));
        assert_eq!(ctx.take_cell_totals(), (0, 0), "take must drain");
    }
}
