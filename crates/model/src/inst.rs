//! The instruction-level interface between workloads and the simulator.
//!
//! Workload generators (crate `ehs-workloads`) produce a deterministic
//! stream of [`Instruction`]s; the full-system simulator (crate `ehs-sim`)
//! consumes them one at a time, fetching each instruction's `pc` through the
//! ICache and routing loads/stores through the DCache. This is the
//! instruction-granular substitute for gem5's decoded ARMv7-M stream — see
//! DESIGN.md for why that granularity is sufficient for Kagura.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::Address;

/// Which way a memory operation moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemOpKind {
    /// A 4-byte read.
    Load,
    /// A 4-byte write.
    Store,
}

impl fmt::Display for MemOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOpKind::Load => f.write_str("load"),
            MemOpKind::Store => f.write_str("store"),
        }
    }
}

/// What an instruction does, independent of where it lives in code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// Load 4 bytes from `addr`.
    Load {
        /// Data address read by the instruction.
        addr: Address,
    },
    /// Store the 4-byte `value` to `addr`.
    Store {
        /// Data address written by the instruction.
        addr: Address,
        /// Little-endian word written.
        value: u32,
    },
    /// A one-cycle arithmetic/logic operation with no data-memory traffic.
    Alu,
}

impl InstKind {
    /// Returns the memory-operation kind, if this instruction touches memory.
    pub fn mem_op(&self) -> Option<MemOpKind> {
        match self {
            InstKind::Load { .. } => Some(MemOpKind::Load),
            InstKind::Store { .. } => Some(MemOpKind::Store),
            InstKind::Alu => None,
        }
    }

    /// Returns the data address, if this instruction touches memory.
    pub fn data_addr(&self) -> Option<Address> {
        match self {
            InstKind::Load { addr } | InstKind::Store { addr, .. } => Some(*addr),
            InstKind::Alu => None,
        }
    }

    /// Returns `true` if this is a memory instruction.
    pub fn is_mem(&self) -> bool {
        !matches!(self, InstKind::Alu)
    }
}

/// One dynamic instruction: a program counter plus what it does.
///
/// # Examples
///
/// ```
/// use ehs_model::{Address, Instruction, MemOpKind};
/// use ehs_model::inst::InstKind;
///
/// let inst = Instruction::load(Address::new(0x400), Address::new(0x10_000));
/// assert_eq!(inst.kind.mem_op(), Some(MemOpKind::Load));
/// assert_eq!(inst.pc, Address::new(0x400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Code address the instruction is fetched from (drives the ICache).
    pub pc: Address,
    /// The operation performed.
    pub kind: InstKind,
}

impl Instruction {
    /// Creates a load instruction at `pc` reading `addr`.
    pub fn load(pc: Address, addr: Address) -> Self {
        Instruction { pc, kind: InstKind::Load { addr } }
    }

    /// Creates a store instruction at `pc` writing `value` to `addr`.
    pub fn store(pc: Address, addr: Address, value: u32) -> Self {
        Instruction { pc, kind: InstKind::Store { addr, value } }
    }

    /// Creates an ALU instruction at `pc`.
    pub fn alu(pc: Address) -> Self {
        Instruction { pc, kind: InstKind::Alu }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstKind::Load { addr } => write!(f, "{}: ld {}", self.pc, addr),
            InstKind::Store { addr, value } => {
                write!(f, "{}: st {} <- {:#x}", self.pc, addr, value)
            }
            InstKind::Alu => write!(f, "{}: alu", self.pc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let pc = Address::new(0x100);
        let a = Address::new(0x2000);
        assert_eq!(Instruction::load(pc, a).kind, InstKind::Load { addr: a });
        assert_eq!(Instruction::store(pc, a, 7).kind, InstKind::Store { addr: a, value: 7 });
        assert_eq!(Instruction::alu(pc).kind, InstKind::Alu);
    }

    #[test]
    fn mem_op_classification() {
        let pc = Address::new(0);
        let a = Address::new(0x40);
        assert_eq!(Instruction::load(pc, a).kind.mem_op(), Some(MemOpKind::Load));
        assert_eq!(Instruction::store(pc, a, 0).kind.mem_op(), Some(MemOpKind::Store));
        assert_eq!(Instruction::alu(pc).kind.mem_op(), None);
        assert!(Instruction::load(pc, a).kind.is_mem());
        assert!(!Instruction::alu(pc).kind.is_mem());
    }

    #[test]
    fn data_addr_present_only_for_mem_ops() {
        let pc = Address::new(0);
        let a = Address::new(0x88);
        assert_eq!(Instruction::load(pc, a).kind.data_addr(), Some(a));
        assert_eq!(Instruction::store(pc, a, 1).kind.data_addr(), Some(a));
        assert_eq!(Instruction::alu(pc).kind.data_addr(), None);
    }

    #[test]
    fn display_formats() {
        let i = Instruction::store(Address::new(0x4), Address::new(0x8), 0xff);
        assert_eq!(i.to_string(), "0x00000004: st 0x00000008 <- 0xff");
    }
}
