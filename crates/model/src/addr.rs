//! Byte addresses and block/set decomposition helpers.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A byte address in the flat physical address space backed by NVM.
///
/// The EHS address space is small (megabytes), but we keep 64-bit addresses
/// so synthetic workloads can place their regions freely.
///
/// # Examples
///
/// ```
/// use ehs_model::Address;
///
/// let a = Address::new(0x1234);
/// assert_eq!(a.block_base(32).get(), 0x1220);
/// assert_eq!(a.block_offset(32), 0x14);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the address of the first byte of the enclosing block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is not a power of two.
    pub fn block_base(self, block_size: u32) -> Address {
        debug_assert!(block_size.is_power_of_two(), "block size must be a power of two");
        Address(self.0 & !(block_size as u64 - 1))
    }

    /// Returns the offset of this address within its block.
    pub fn block_offset(self, block_size: u32) -> u32 {
        debug_assert!(block_size.is_power_of_two());
        (self.0 & (block_size as u64 - 1)) as u32
    }

    /// Returns the block index (address divided by the block size).
    pub fn block_index(self, block_size: u32) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 >> block_size.trailing_zeros()
    }

    /// Returns the cache set index for a cache with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `num_sets` is not a power of two.
    pub fn set_index(self, block_size: u32, num_sets: u32) -> u32 {
        debug_assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        (self.block_index(block_size) & (num_sets as u64 - 1)) as u32
    }

    /// Returns the tag bits above the set index.
    pub fn tag(self, block_size: u32, num_sets: u32) -> u64 {
        debug_assert!(num_sets.is_power_of_two());
        self.block_index(block_size) >> num_sets.trailing_zeros()
    }

    /// Checked addition of a byte offset.
    pub fn checked_add(self, offset: u64) -> Option<Address> {
        self.0.checked_add(offset).map(Address)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl Add<u64> for Address {
    type Output = Address;
    fn add(self, rhs: u64) -> Address {
        Address(self.0 + rhs)
    }
}

impl Sub<Address> for Address {
    /// Byte distance between two addresses.
    type Output = u64;
    fn sub(self, rhs: Address) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_decomposition() {
        let a = Address::new(0x1037);
        assert_eq!(a.block_base(32), Address::new(0x1020));
        assert_eq!(a.block_offset(32), 0x17);
        assert_eq!(a.block_index(32), 0x1037 / 32);
    }

    #[test]
    fn set_and_tag_partition_block_index() {
        let block_size = 32;
        let num_sets = 4;
        let a = Address::new(0x00AB_CDE0);
        let idx = a.block_index(block_size);
        let set = a.set_index(block_size, num_sets) as u64;
        let tag = a.tag(block_size, num_sets);
        assert_eq!(tag * num_sets as u64 + set, idx);
    }

    #[test]
    fn same_set_different_tag_conflict() {
        // Two addresses one "cache-size" apart map to the same set.
        let block_size = 32;
        let num_sets = 4; // 256B / 32B / 2 ways
        let a = Address::new(0x100);
        let b = Address::new(0x100 + (num_sets * block_size) as u64);
        assert_eq!(a.set_index(block_size, num_sets), b.set_index(block_size, num_sets));
        assert_ne!(a.tag(block_size, num_sets), b.tag(block_size, num_sets));
    }

    #[test]
    fn arithmetic_and_formatting() {
        let a = Address::new(0x10);
        assert_eq!(a + 0x10, Address::new(0x20));
        assert_eq!(Address::new(0x30) - a, 0x20);
        assert_eq!(a.to_string(), "0x00000010");
        assert_eq!(format!("{:x}", a), "10");
        assert_eq!(format!("{:X}", Address::new(0xAB)), "AB");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Address::new(u64::MAX).checked_add(1).is_none());
        assert_eq!(Address::new(1).checked_add(1), Some(Address::new(2)));
    }
}
