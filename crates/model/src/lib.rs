//! Shared primitive types for the Kagura energy-harvesting-system (EHS)
//! simulation stack.
//!
//! This crate is the bottom of the workspace dependency graph. It defines the
//! physical quantities the rest of the stack computes with ([`Energy`],
//! [`Power`], [`SimTime`], [`Cycles`]), the memory primitives shared between
//! the cache, NVM and workload crates ([`Address`], [`BlockData`],
//! [`Instruction`]), and the default parameter tables from the paper's
//! Table I ([`params`]).
//!
//! # Examples
//!
//! ```
//! use ehs_model::{Energy, Power, SimTime};
//!
//! let harvest = Power::from_microwatts(50.0);
//! let window = SimTime::from_micros(10.0);
//! let gained = harvest * window;
//! assert!((gained.picojoules() - 500.0).abs() < 1e-6);
//! ```

pub mod addr;
pub mod block;
pub mod energy;
pub mod inst;
pub mod params;
pub mod time;

pub use addr::Address;
pub use block::BlockData;
pub use energy::{Energy, Power};
pub use inst::{Instruction, MemOpKind};
pub use params::{CacheParams, CompressorCost, CoreParams, NvmKind, NvmParams, SystemParams};
pub use time::{Cycles, SimTime, CLOCK_HZ};
