//! Energy and power quantities.
//!
//! Everything in the simulator is accounted in **picojoules** — the natural
//! unit at this scale (a cache access is 9 pJ, a power cycle holds ~150 nJ).
//! [`Energy`] and [`Power`] are thin `f64` newtypes so arithmetic stays cheap
//! while the type system keeps joules and watts from being mixed up
//! (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// An amount of energy, stored internally in picojoules.
///
/// `Energy` forms a vector space over `f64`: values add, subtract and scale.
/// Negative energies are representable (they appear transiently in
/// capacitor-balance arithmetic) but most APIs expect non-negative values.
///
/// # Examples
///
/// ```
/// use ehs_model::Energy;
///
/// let miss = Energy::from_picojoules(150.0);
/// let four_misses = miss * 4.0;
/// assert_eq!(four_misses.picojoules(), 600.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub const fn from_picojoules(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub const fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub const fn from_microjoules(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// Creates an energy from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j * 1e12)
    }

    /// Returns the value in picojoules.
    pub const fn picojoules(self) -> f64 {
        self.0
    }

    /// Returns the value in nanojoules.
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the value in microjoules.
    pub fn microjoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the value in joules.
    pub fn joules(self) -> f64 {
        self.0 * 1e-12
    }

    /// Returns `true` if this energy is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Clamps a (possibly negative) balance to zero from below.
    pub fn clamp_non_negative(self) -> Energy {
        Energy(self.0.max(0.0))
    }

    /// Absolute value of a signed energy difference.
    pub fn abs(self) -> Energy {
        Energy(self.0.abs())
    }

    /// Returns the smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj.abs() >= 1e6 {
            write!(f, "{:.3} uJ", pj * 1e-6)
        } else if pj.abs() >= 1e3 {
            write!(f, "{:.3} nJ", pj * 1e-3)
        } else {
            write!(f, "{:.3} pJ", pj)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Ratio of two energies (dimensionless).
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<SimTime> for Energy {
    type Output = Power;
    fn div(self, rhs: SimTime) -> Power {
        Power::from_watts(self.joules() / rhs.seconds())
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

/// An amount of power, stored internally in watts.
///
/// Ambient harvesting sources in this stack are tens of microwatts; active
/// processor draw is milliwatts. Multiplying a `Power` by a [`SimTime`]
/// yields an [`Energy`].
///
/// # Examples
///
/// ```
/// use ehs_model::{Power, SimTime};
///
/// let leak = Power::from_microwatts(3.0);
/// assert_eq!((leak * SimTime::from_micros(2.0)).picojoules(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub const fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub const fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub const fn from_microwatts(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    pub const fn from_nanowatts(nw: f64) -> Self {
        Power(nw * 1e-9)
    }

    /// Returns the value in watts.
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// Returns the value in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microwatts.
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Clamps a (possibly negative) net power to zero from below.
    pub fn clamp_non_negative(self) -> Power {
        Power(self.0.max(0.0))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w.abs() >= 1e-3 {
            write!(f, "{:.3} mW", w * 1e3)
        } else if w.abs() >= 1e-6 {
            write!(f, "{:.3} uW", w * 1e6)
        } else {
            write!(f, "{:.3} nW", w * 1e9)
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<SimTime> for Power {
    type Output = Energy;
    fn mul(self, rhs: SimTime) -> Energy {
        Energy::from_joules(self.0 * rhs.seconds())
    }
}

impl Mul<Power> for SimTime {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let e = Energy::from_nanojoules(1.5);
        assert!((e.picojoules() - 1500.0).abs() < 1e-9);
        assert!((e.nanojoules() - 1.5).abs() < 1e-12);
        assert!((Energy::from_joules(1.0).microjoules() - 1e6).abs() < 1e-3);
    }

    #[test]
    fn power_times_time_is_energy() {
        let p = Power::from_milliwatts(2.0);
        let e = p * SimTime::from_micros(5.0);
        assert!((e.nanojoules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_nanojoules(10.0) / SimTime::from_micros(5.0);
        assert!((p.milliwatts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves_like_vector_space() {
        let a = Energy::from_picojoules(9.0);
        let b = Energy::from_picojoules(3.0);
        assert_eq!((a + b).picojoules(), 12.0);
        assert_eq!((a - b).picojoules(), 6.0);
        assert_eq!((a * 2.0).picojoules(), 18.0);
        assert_eq!((a / 3.0).picojoules(), 3.0);
        assert_eq!(a / b, 3.0);
        assert_eq!((-a).picojoules(), -9.0);
    }

    #[test]
    fn clamp_non_negative_floors_at_zero() {
        assert_eq!((-Energy::from_picojoules(5.0)).clamp_non_negative(), Energy::ZERO);
        assert_eq!(Energy::from_picojoules(5.0).clamp_non_negative().picojoules(), 5.0);
    }

    #[test]
    fn sums_accumulate() {
        let total: Energy = (0..4).map(|i| Energy::from_picojoules(i as f64)).sum();
        assert_eq!(total.picojoules(), 6.0);
        let p: Power = vec![Power::from_microwatts(1.0); 3].into_iter().sum();
        assert!((p.microwatts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Energy::from_picojoules(9.0).to_string(), "9.000 pJ");
        assert_eq!(Energy::from_nanojoules(2.0).to_string(), "2.000 nJ");
        assert_eq!(Energy::from_microjoules(1.5).to_string(), "1.500 uJ");
        assert_eq!(Power::from_microwatts(50.0).to_string(), "50.000 uW");
        assert_eq!(Power::from_milliwatts(2.0).to_string(), "2.000 mW");
    }

    #[test]
    fn min_max_select_correct_operand() {
        let a = Energy::from_picojoules(1.0);
        let b = Energy::from_picojoules(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
