//! Hardware parameter tables (paper Table I, plus documented extrapolations).
//!
//! These structs carry the "physics constants" shared by several crates:
//! per-event energies, latencies and geometry. The defaults reproduce the
//! paper's Table I where it gives numbers (cache access 9 pJ, BDI compress
//! 3.84 pJ / decompress 0.65 pJ, 16 MB ReRAM, 200 MHz in-order core); the
//! remaining constants are chosen to plausible 45 nm LOP magnitudes and are
//! documented in DESIGN.md.

use serde::{Deserialize, Serialize};

use crate::energy::{Energy, Power};
use crate::time::Cycles;

/// Parameters of the in-order core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Dynamic pipeline energy charged per committed instruction.
    pub inst_energy: Energy,
}

impl CoreParams {
    /// Paper Table I: single-core in-order five-stage pipeline at 200 MHz.
    pub fn table1() -> Self {
        CoreParams { clock_hz: crate::time::CLOCK_HZ, inst_energy: Energy::from_picojoules(5.0) }
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// Geometry and cost parameters of one SRAM cache (ICache or DCache).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total data capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block_size: u32,
    /// Hit latency in core cycles.
    pub hit_latency: Cycles,
    /// Dynamic energy per cache access (hit or fill).
    pub access_energy: Energy,
    /// Static leakage power per byte of capacity, drawn while powered.
    pub leakage_per_byte: Power,
}

impl CacheParams {
    /// Paper Table I: 256 B, 2-way, 32 B blocks, 1-cycle hits, 9 pJ/access.
    pub fn table1() -> Self {
        CacheParams {
            size_bytes: 256,
            ways: 2,
            block_size: 32,
            hit_latency: Cycles::new(1),
            access_energy: Energy::from_picojoules(9.0),
            // Calibrated so that the Fig-1 trade-off reproduces: at 256B the
            // leak is a few percent of active draw; at 4kB it rivals it.
            leakage_per_byte: Power::from_nanowatts(600.0),
        }
    }

    /// Returns a copy with a different total capacity.
    pub fn with_size(mut self, size_bytes: u32) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different associativity.
    pub fn with_ways(mut self, ways: u32) -> Self {
        self.ways = ways;
        self
    }

    /// Returns a copy with a different block size.
    pub fn with_block_size(mut self, block_size: u32) -> Self {
        self.block_size = block_size;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways * block_size` sets, or a non-power-of-two set count).
    pub fn num_sets(&self) -> u32 {
        let set_bytes = self.ways * self.block_size;
        assert!(
            set_bytes > 0 && self.size_bytes.is_multiple_of(set_bytes),
            "inconsistent cache geometry"
        );
        let sets = self.size_bytes / set_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Total leakage power of this cache while the core is powered.
    pub fn leakage(&self) -> Power {
        self.leakage_per_byte * self.size_bytes as f64
    }
}

impl Default for CacheParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// The nonvolatile main-memory technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmKind {
    /// Resistive RAM (paper default).
    ReRam,
    /// Phase-change memory.
    Pcm,
    /// Spin-transfer-torque RAM.
    SttRam,
}

impl NvmKind {
    /// All modelled technologies, in the paper's presentation order.
    pub const ALL: [NvmKind; 3] = [NvmKind::ReRam, NvmKind::Pcm, NvmKind::SttRam];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            NvmKind::ReRam => "ReRAM",
            NvmKind::Pcm => "PCM",
            NvmKind::SttRam => "STTRAM",
        }
    }
}

impl std::fmt::Display for NvmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost and capacity parameters of the NVM main memory.
///
/// Latency/energy are per *block* transfer (one cache line). The ReRAM
/// defaults derive from Table I's DDR-style timing (tRCD 18 ns + tCL 15 ns +
/// burst ≈ 10 cycles at 200 MHz; tWR 150 ns ≈ 30 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmParams {
    /// Technology.
    pub kind: NvmKind,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Block read latency in core cycles.
    pub read_latency: Cycles,
    /// Block write latency in core cycles.
    pub write_latency: Cycles,
    /// Energy per block read.
    pub read_energy: Energy,
    /// Energy per block write.
    pub write_energy: Energy,
}

impl NvmParams {
    /// Paper Table I default: 16 MB ReRAM.
    pub fn table1() -> Self {
        Self::new(NvmKind::ReRam, 16 << 20)
    }

    /// Creates parameters for a given technology and capacity.
    pub fn new(kind: NvmKind, size_bytes: u64) -> Self {
        let (rl, wl, re, we) = match kind {
            NvmKind::ReRam => (10, 30, 150.0, 600.0),
            NvmKind::Pcm => (12, 60, 200.0, 900.0),
            NvmKind::SttRam => (8, 20, 120.0, 350.0),
        };
        // Larger arrays have longer bitlines and higher access energy; scale
        // energy mildly (+10 % per doubling above 16 MB, -10 % per halving).
        let doublings = ((size_bytes as f64) / (16u64 << 20) as f64).log2();
        let scale = 1.0 + 0.10 * doublings;
        NvmParams {
            kind,
            size_bytes,
            read_latency: Cycles::new(rl),
            write_latency: Cycles::new(wl),
            read_energy: Energy::from_picojoules(re * scale),
            write_energy: Energy::from_picojoules(we * scale),
        }
    }
}

impl Default for NvmParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// Energy and latency cost of one compression algorithm's engine.
///
/// The BDI numbers come from paper Table I; the others are extrapolated in
/// proportion to hardware complexity (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressorCost {
    /// Energy to compress one block on fill.
    pub compress_energy: Energy,
    /// Energy to decompress one block on access or eviction.
    pub decompress_energy: Energy,
    /// Extra cycles added to a fill that compresses.
    pub compress_latency: Cycles,
    /// Extra cycles added to an access that decompresses.
    pub decompress_latency: Cycles,
}

impl CompressorCost {
    /// Paper Table I: BDI compress 3.84 pJ, decompress 0.65 pJ.
    pub fn bdi_table1() -> Self {
        CompressorCost {
            compress_energy: Energy::from_picojoules(3.84),
            decompress_energy: Energy::from_picojoules(0.65),
            compress_latency: Cycles::new(3),
            decompress_latency: Cycles::new(1),
        }
    }
}

impl Default for CompressorCost {
    fn default() -> Self {
        Self::bdi_table1()
    }
}

/// The hardware parameter bundle shared by all EHS designs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemParams {
    /// Core parameters.
    pub core: CoreParams,
    /// Instruction-cache parameters.
    pub icache: CacheParams,
    /// Data-cache parameters.
    pub dcache: CacheParams,
    /// Main-memory parameters.
    pub nvm: NvmParams,
}

impl SystemParams {
    /// The paper's Table I configuration.
    pub fn table1() -> Self {
        SystemParams {
            core: CoreParams::table1(),
            icache: CacheParams::table1(),
            dcache: CacheParams::table1(),
            nvm: NvmParams::table1(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_numbers() {
        let p = SystemParams::table1();
        assert_eq!(p.dcache.size_bytes, 256);
        assert_eq!(p.dcache.ways, 2);
        assert_eq!(p.dcache.block_size, 32);
        assert_eq!(p.dcache.access_energy.picojoules(), 9.0);
        assert_eq!(p.nvm.size_bytes, 16 << 20);
        assert_eq!(p.core.clock_hz, 200.0e6);
        let bdi = CompressorCost::bdi_table1();
        assert_eq!(bdi.compress_energy.picojoules(), 3.84);
        assert_eq!(bdi.decompress_energy.picojoules(), 0.65);
    }

    #[test]
    fn cache_geometry_derivation() {
        // 256 B / (2 ways * 32 B) = 4 sets.
        assert_eq!(CacheParams::table1().num_sets(), 4);
        assert_eq!(CacheParams::table1().with_size(4096).num_sets(), 64);
        assert_eq!(CacheParams::table1().with_ways(1).num_sets(), 8);
        assert_eq!(CacheParams::table1().with_block_size(16).num_sets(), 8);
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_panics() {
        let _ = CacheParams::table1().with_size(100).num_sets();
    }

    #[test]
    fn cache_leakage_scales_with_size() {
        let small = CacheParams::table1();
        let large = small.with_size(4096);
        assert!((large.leakage().watts() / small.leakage().watts() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn nvm_energy_scales_with_capacity() {
        let base = NvmParams::new(NvmKind::ReRam, 16 << 20);
        let big = NvmParams::new(NvmKind::ReRam, 32 << 20);
        let small = NvmParams::new(NvmKind::ReRam, 8 << 20);
        assert!(big.read_energy > base.read_energy);
        assert!(small.read_energy < base.read_energy);
    }

    #[test]
    fn nvm_kinds_have_distinct_costs() {
        let r = NvmParams::new(NvmKind::ReRam, 16 << 20);
        let p = NvmParams::new(NvmKind::Pcm, 16 << 20);
        let s = NvmParams::new(NvmKind::SttRam, 16 << 20);
        assert!(p.write_energy > r.write_energy);
        assert!(s.write_energy < r.write_energy);
        assert_eq!(NvmKind::ALL.len(), 3);
        assert_eq!(NvmKind::Pcm.to_string(), "PCM");
    }
}
