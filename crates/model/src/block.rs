//! Cache-block payloads.
//!
//! Compression in this stack operates on *real bytes*: the NVM model stores
//! actual data, blocks move into the cache with their contents, and the
//! compressors in `ehs-compress` see exactly what a hardware compressor
//! would. [`BlockData`] is the owned byte payload of one cache block.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Blocks at or below this size live inline in [`BlockData`] — no heap
/// allocation on clone or drop. 64 B covers every configured block size;
/// larger blocks (possible through [`BlockData::from_bytes`]) spill to a
/// `Vec`.
const INLINE_CAP: usize = 64;

/// Storage behind [`BlockData`].
///
/// Invariant: a block of `len <= INLINE_CAP` is *always* `Inline` (both
/// constructors enforce this), and the inline buffer's bytes past `len`
/// are *always* zero (`as_mut_slice` never exposes them). Together these
/// make the derived `PartialEq`/`Hash` equivalent to comparing/hashing
/// the live bytes: equal contents imply equal representations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Repr {
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    Heap(Vec<u8>),
}

/// The owned contents of one cache block (16, 32 or 64 bytes by default).
///
/// Blocks up to 64 bytes are stored inline: cloning one (the NVM model
/// hands out owned copies on every cache miss) is a plain memcpy with no
/// allocator traffic, and dropping an evicted line frees nothing.
///
/// # Examples
///
/// ```
/// use ehs_model::BlockData;
///
/// let mut block = BlockData::zeroed(32);
/// block.write_u32(4, 0xDEAD_BEEF);
/// assert_eq!(block.read_u32(4), 0xDEAD_BEEF);
/// assert_eq!(block.len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockData {
    repr: Repr,
}

impl BlockData {
    /// Creates an all-zero block of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of 4 (blocks are always
    /// word-addressable).
    pub fn zeroed(size: u32) -> Self {
        assert!(size > 0 && size.is_multiple_of(4), "block size must be a positive multiple of 4");
        let repr = if size as usize <= INLINE_CAP {
            Repr::Inline { len: size as u8, buf: [0u8; INLINE_CAP] }
        } else {
            Repr::Heap(vec![0u8; size as usize])
        };
        BlockData { repr }
    }

    /// Creates a block from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if the byte count is zero or not a multiple of 4.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert!(
            !bytes.is_empty() && bytes.len().is_multiple_of(4),
            "block size must be a positive multiple of 4"
        );
        let repr = if bytes.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..bytes.len()].copy_from_slice(&bytes);
            Repr::Inline { len: bytes.len() as u8, buf }
        } else {
            Repr::Heap(bytes)
        };
        BlockData { repr }
    }

    /// Number of bytes in the block.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Always `false`: blocks are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows the raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Mutably borrows the raw bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Consumes the block, returning the underlying byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        match self.repr {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Heap(v) => v,
        }
    }

    /// Reads the little-endian 32-bit word at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the block length.
    pub fn read_u32(&self, offset: u32) -> u32 {
        let o = offset as usize;
        u32::from_le_bytes(self.as_slice()[o..o + 4].try_into().expect("4-byte slice"))
    }

    /// Writes the little-endian 32-bit word at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the block length.
    pub fn write_u32(&mut self, offset: u32, value: u32) {
        let o = offset as usize;
        self.as_mut_slice()[o..o + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads the little-endian 64-bit word at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the block length.
    pub fn read_u64(&self, offset: u32) -> u64 {
        let o = offset as usize;
        u64::from_le_bytes(self.as_slice()[o..o + 8].try_into().expect("8-byte slice"))
    }

    /// Writes the little-endian 64-bit word at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the block length.
    pub fn write_u64(&mut self, offset: u32, value: u64) {
        let o = offset as usize;
        self.as_mut_slice()[o..o + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads the byte at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the block length.
    pub fn read_u8(&self, offset: u32) -> u8 {
        self.as_slice()[offset as usize]
    }

    /// Writes the byte at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the block length.
    pub fn write_u8(&mut self, offset: u32, value: u8) {
        self.as_mut_slice()[offset as usize] = value;
    }

    /// Iterates over the block as little-endian 32-bit words.
    pub fn words(&self) -> impl Iterator<Item = u32> + '_ {
        self.as_slice()
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
    }

    /// Returns `true` if every byte in the block is zero.
    pub fn is_all_zero(&self) -> bool {
        self.as_slice().iter().all(|&b| b == 0)
    }
}

impl AsRef<[u8]> for BlockData {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Display for BlockData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}B:", self.len())?;
        for chunk in self.as_slice().chunks(4) {
            write!(f, " ")?;
            for b in chunk {
                write!(f, "{:02x}", b)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero() {
        let b = BlockData::zeroed(32);
        assert_eq!(b.len(), 32);
        assert!(b.is_all_zero());
        assert!(!b.is_empty());
    }

    #[test]
    fn word_round_trip() {
        let mut b = BlockData::zeroed(32);
        b.write_u32(0, 0x0102_0304);
        b.write_u32(28, u32::MAX);
        assert_eq!(b.read_u32(0), 0x0102_0304);
        assert_eq!(b.read_u32(28), u32::MAX);
        assert!(!b.is_all_zero());
    }

    #[test]
    fn u64_round_trip() {
        let mut b = BlockData::zeroed(16);
        b.write_u64(8, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(b.read_u64(8), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn byte_access() {
        let mut b = BlockData::zeroed(16);
        b.write_u8(3, 0xAA);
        assert_eq!(b.read_u8(3), 0xAA);
        assert_eq!(b.read_u32(0), 0xAA00_0000);
    }

    #[test]
    fn words_iterator_is_little_endian() {
        let b = BlockData::from_bytes(vec![1, 0, 0, 0, 2, 0, 0, 0]);
        let words: Vec<u32> = b.words().collect();
        assert_eq!(words, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive multiple of 4")]
    fn rejects_unaligned_size() {
        let _ = BlockData::zeroed(30);
    }

    #[test]
    fn display_is_nonempty() {
        let b = BlockData::zeroed(8);
        assert_eq!(b.to_string(), "[8B: 00000000 00000000]");
    }

    #[test]
    fn inline_and_heap_round_trip() {
        // At the inline boundary.
        let small = BlockData::from_bytes((0..64u8).collect());
        assert_eq!(small.len(), 64);
        assert_eq!(small.clone(), small);
        assert_eq!(small.as_slice(), small.clone().into_bytes().as_slice());
        // Past it: spills to the heap, same behaviour.
        let big = BlockData::from_bytes((0..128u8).collect());
        assert_eq!(big.len(), 128);
        assert_eq!(big.clone(), big);
        assert_eq!(big.as_slice(), big.clone().into_bytes().as_slice());
        assert_eq!(big.read_u32(124), u32::from_le_bytes([124, 125, 126, 127]));
    }

    #[test]
    fn mutation_preserves_equality_semantics() {
        // Two blocks built differently but holding the same bytes compare
        // equal (the inline tail stays zero under every mutation path).
        let mut a = BlockData::zeroed(32);
        a.write_u32(12, 0x1234_5678);
        let mut bytes = vec![0u8; 32];
        bytes[12..16].copy_from_slice(&0x1234_5678u32.to_le_bytes());
        let b = BlockData::from_bytes(bytes);
        assert_eq!(a, b);
        a.as_mut_slice()[12..16].fill(0);
        assert_eq!(a, BlockData::zeroed(32));
    }
}
