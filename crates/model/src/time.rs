//! Simulated time and clock cycles.
//!
//! The core clock is fixed at 200 MHz (paper Table I). [`Cycles`] counts
//! integral clock ticks; [`SimTime`] is continuous wall-clock time inside the
//! simulation, used for power-trace integration and capacitor charging.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Core clock frequency in hertz (200 MHz, paper Table I).
pub const CLOCK_HZ: f64 = 200.0e6;

/// A count of core clock cycles.
///
/// # Examples
///
/// ```
/// use ehs_model::Cycles;
///
/// let hit = Cycles::new(1);
/// let miss_penalty = Cycles::new(10);
/// assert_eq!((hit + miss_penalty).get(), 11);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts this cycle count to simulated time at [`CLOCK_HZ`].
    pub fn to_time(self) -> SimTime {
        SimTime::from_seconds(self.0 as f64 / CLOCK_HZ)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// Continuous simulated time, stored in seconds.
///
/// `SimTime` is used for everything that happens on the *energy* timescale:
/// power-trace windows (10 µs), capacitor charge phases (milliseconds) and
/// total run durations. It is totally ordered and forms an affine line with
/// differences expressible as `SimTime` too (we do not distinguish instants
/// from durations; the simulator only ever needs durations and a monotonic
/// "now").
///
/// # Examples
///
/// ```
/// use ehs_model::SimTime;
///
/// let window = SimTime::from_micros(10.0);
/// assert!((window.seconds() - 1e-5).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero instant / zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    pub const fn from_seconds(s: f64) -> Self {
        SimTime(s)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: f64) -> Self {
        SimTime(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: f64) -> Self {
        SimTime(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: f64) -> Self {
        SimTime(ns * 1e-9)
    }

    /// Returns the value in seconds.
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Number of whole core cycles contained in this duration.
    pub fn to_cycles(self) -> Cycles {
        Cycles((self.0 * CLOCK_HZ) as u64)
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns the larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.abs() >= 1.0 {
            write!(f, "{:.3} s", s)
        } else if s.abs() >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else {
            write!(f, "{:.3} us", s * 1e6)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    /// Ratio of two durations (dimensionless).
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_time_uses_clock() {
        // 200 cycles at 200 MHz is exactly 1 us.
        assert!((Cycles::new(200).to_time().micros() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_to_cycles_truncates() {
        assert_eq!(SimTime::from_micros(1.0).to_cycles(), Cycles::new(200));
        assert_eq!(SimTime::from_nanos(7.0).to_cycles(), Cycles::new(1));
        assert_eq!(SimTime::from_nanos(4.0).to_cycles(), Cycles::ZERO);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 2, Cycles::new(20));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = vec![a, b].into_iter().sum();
        assert_eq!(total, Cycles::new(13));
    }

    #[test]
    fn time_display() {
        assert_eq!(SimTime::from_micros(10.0).to_string(), "10.000 us");
        assert_eq!(SimTime::from_millis(2.0).to_string(), "2.000 ms");
        assert_eq!(SimTime::from_seconds(1.5).to_string(), "1.500 s");
    }

    #[test]
    fn time_ratio_is_dimensionless() {
        assert!((SimTime::from_micros(10.0) / SimTime::from_micros(2.0) - 5.0).abs() < 1e-12);
    }
}
