//! Attacker-visible per-access timing timeline.
//!
//! [`AccessTimeline`] is a [`CacheProbe`] that records, for every data-cache
//! access, the tuple a co-resident attacker could observe with a cycle
//! counter: which set the access landed in, the latency the access paid,
//! whether it hit, and how the set's compressed occupancy changed. It is
//! the per-access counterpart to cachescope's aggregates — cachescope says
//! "misses cost X on average", the timeline says "*this* probe load missed,
//! so the victim's block did not fit in two segments".
//!
//! The probe is bounded: past `capacity` records it counts drops instead of
//! growing, so a runaway program cannot balloon host memory. Like every
//! [`CacheProbe`], it is zero-cost when detached and purely event-driven —
//! no per-instruction state — so an attached timeline keeps the
//! fast-forward loop engaged and observes the identical record stream under
//! either execution loop (the fastpath differential suite pins this).
//!
//! Latency is reconstructed from a [`LatencyModel`] of architectural
//! constants rather than read back from the simulator's ledger: the model
//! is exactly what a real attacker calibrates offline (tag-hit time,
//! decompression stall, memory round-trip), and keeping it inside the probe
//! means the timeline needs no hot-loop cooperation from the simulator.

use crate::probe::{CacheProbe, EvictionReason, ProbeEviction, ProbeFill, ProbeHit};

/// Architectural latency constants (in core cycles) from which the
/// timeline reconstructs attacker-visible access times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cache hit latency (tag + data array).
    pub hit: u64,
    /// Extra stall when a hit must decompress the line.
    pub decompress: u64,
    /// Extra stall when a fill stores the line compressed.
    pub compress: u64,
    /// Miss penalty: memory block read on top of the tag check.
    pub miss: u64,
}

/// One attacker-visible access record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineRecord {
    /// Set index the access mapped to.
    pub set: u32,
    /// Reconstructed access latency in cycles (see [`LatencyModel`]).
    pub latency: u64,
    /// `true` for a hit, `false` for a miss (fill).
    pub hit: bool,
    /// Net change in the set's occupied data-array segments caused by this
    /// access, evictions included (0 for hits; a fill that displaced a
    /// two-segment block to admit a three-segment one reads +1).
    pub occ_delta: i64,
}

/// Bounded per-access timeline probe; see the module docs.
#[derive(Debug, Clone)]
pub struct AccessTimeline {
    model: LatencyModel,
    capacity: usize,
    records: Vec<TimelineRecord>,
    dropped: u64,
    /// Occupied segments per set as of each set's last *recorded* access;
    /// capacity/forced evictions between records fold into the next fill's
    /// delta (they are part of that miss), power-loss evictions apply
    /// immediately (they belong to no access).
    used: Vec<i64>,
}

impl AccessTimeline {
    /// Creates a timeline over `num_sets` sets holding at most `capacity`
    /// records.
    pub fn new(model: LatencyModel, num_sets: u32, capacity: usize) -> Self {
        AccessTimeline {
            model,
            capacity,
            records: Vec::new(),
            dropped: 0,
            used: vec![0; num_sets as usize],
        }
    }

    /// The recorded accesses, oldest first.
    pub fn records(&self) -> &[TimelineRecord] {
        &self.records
    }

    /// Records dropped after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The model the latencies were reconstructed with.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// The last record in `set`, if any — the attacker's classification
    /// primitive (its probe load is the final access it issues to the
    /// target set).
    pub fn last_in_set(&self, set: u32) -> Option<TimelineRecord> {
        self.records.iter().rev().find(|r| r.set == set).copied()
    }

    fn push(&mut self, r: TimelineRecord) {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.records.push(r);
        }
    }
}

impl CacheProbe for AccessTimeline {
    fn on_hit(&mut self, hit: ProbeHit) {
        let latency = self.model.hit + if hit.was_compressed { self.model.decompress } else { 0 };
        self.push(TimelineRecord { set: hit.set, latency, hit: true, occ_delta: 0 });
    }

    fn on_hit_run(&mut self, set: u32, _full_segments: u32, n: u64) {
        // Contractually n MRU uncompressed hits of reuse 1 — expand so the
        // stream matches what the reference loop reports one at a time.
        let latency = self.model.hit;
        for _ in 0..n {
            self.push(TimelineRecord { set, latency, hit: true, occ_delta: 0 });
        }
    }

    fn on_fill(&mut self, fill: ProbeFill) {
        let latency =
            self.model.miss + if fill.stored_compressed { self.model.compress } else { 0 };
        let delta = fill.used_after as i64 - self.used[fill.set as usize];
        self.used[fill.set as usize] = fill.used_after as i64;
        self.push(TimelineRecord { set: fill.set, latency, hit: false, occ_delta: delta });
    }

    fn on_evict(&mut self, evt: ProbeEviction) {
        if evt.reason == EvictionReason::PowerLoss {
            // Not attributable to any access; apply now so the next fill's
            // delta is measured against the post-outage set state.
            self.used[evt.set as usize] -= evt.segments as i64;
        }
        // Capacity/forced evictions stay pending: the fill that triggered
        // them reports used_after, which already accounts for them.
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: LatencyModel = LatencyModel { hit: 1, decompress: 4, compress: 3, miss: 11 };

    fn fill(set: u32, segments: u32, compressed: bool, used_after: u32) -> ProbeFill {
        ProbeFill {
            set,
            segments,
            full_segments: 4,
            stored_compressed: compressed,
            used_after,
            blocks_after: 1,
        }
    }

    #[test]
    fn latencies_follow_the_model() {
        let mut t = AccessTimeline::new(MODEL, 4, 16);
        t.on_fill(fill(0, 2, true, 2));
        t.on_hit(ProbeHit { set: 0, was_compressed: true, segments: 2, reuse: 1 });
        t.on_hit(ProbeHit { set: 1, was_compressed: false, segments: 4, reuse: 1 });
        let r = t.records();
        assert_eq!(r[0], TimelineRecord { set: 0, latency: 14, hit: false, occ_delta: 2 });
        assert_eq!(r[1], TimelineRecord { set: 0, latency: 5, hit: true, occ_delta: 0 });
        assert_eq!(r[2], TimelineRecord { set: 1, latency: 1, hit: true, occ_delta: 0 });
    }

    #[test]
    fn occupancy_deltas_fold_capacity_evictions_into_the_fill() {
        let mut t = AccessTimeline::new(MODEL, 4, 16);
        t.on_fill(fill(0, 2, true, 2));
        t.on_fill(fill(0, 2, true, 4));
        // A capacity eviction (−2) then a 3-segment fill: net +1.
        t.on_evict(ProbeEviction {
            set: 0,
            reason: EvictionReason::Capacity,
            segments: 2,
            was_compressed: true,
            lifetime: 5,
            idle: 2,
        });
        t.on_fill(fill(0, 3, true, 5));
        assert_eq!(t.records()[2].occ_delta, 1);
        // Power loss empties the set outside any access; the next fill's
        // delta is measured from the emptied state.
        t.on_evict(ProbeEviction {
            set: 0,
            reason: EvictionReason::PowerLoss,
            segments: 3,
            was_compressed: true,
            lifetime: 1,
            idle: 1,
        });
        t.on_evict(ProbeEviction {
            set: 0,
            reason: EvictionReason::PowerLoss,
            segments: 2,
            was_compressed: true,
            lifetime: 9,
            idle: 4,
        });
        t.on_fill(fill(0, 2, true, 2));
        assert_eq!(t.records()[3].occ_delta, 2);
    }

    #[test]
    fn hit_runs_expand_to_individual_records() {
        let mut t = AccessTimeline::new(MODEL, 4, 16);
        t.on_hit_run(2, 4, 3);
        assert_eq!(t.records().len(), 3);
        assert!(t
            .records()
            .iter()
            .all(|r| *r == TimelineRecord { set: 2, latency: 1, hit: true, occ_delta: 0 }));
    }

    #[test]
    fn capacity_bounds_the_record_count() {
        let mut t = AccessTimeline::new(MODEL, 1, 2);
        t.on_hit_run(0, 4, 5);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.last_in_set(0).unwrap().set, 0);
        assert_eq!(t.last_in_set(5), None);
    }
}
