//! Compressed set-associative cache simulator.
//!
//! This crate is the *mechanism* half of cache compression: a write-back,
//! LRU, set-associative SRAM cache whose data array is organised in
//! fixed-size **segments** (8 B by default), so compressed blocks occupy
//! fewer segments and a set can hold more blocks than its nominal
//! associativity (up to a doubled tag array, as in compressed-cache
//! designs since Alameldeen & Wood). The *policy* half — deciding when to
//! compress — lives in `kagura-core`; the simulator asks the policy for a
//! [`FillMode`] and passes it to [`CompressedCache::fill`].
//!
//! Faithfulness notes (paper §II–§IV):
//!
//! * On a fill in compressing mode, the incoming block is compressed and,
//!   if the set still lacks room, resident *uncompressed* blocks are
//!   compressed too (paper: "compressors should compress both the incoming
//!   block and some of the existing uncompressed blocks to make room").
//!   Only then are LRU victims evicted.
//! * Every access to a compressed block pays a decompression (the `a·N`
//!   term in Eq. 2), and evicting a dirty compressed block pays one more
//!   (the `L` term).
//! * A write hit on a compressed block decompresses and *re-compresses*
//!   the line (the `M` term of Eq. 2). If the modified contents no longer
//!   compress, the line expands (a "fat write"), which can force evictions.
//!
//! # Examples
//!
//! ```
//! use ehs_cache::{CacheConfig, CompressedCache, FillMode};
//! use ehs_compress::Algorithm;
//! use ehs_model::{Address, BlockData, CacheParams};
//!
//! let mut cache = CompressedCache::new(CacheConfig::new(
//!     CacheParams::table1(),
//!     Algorithm::Bdi,
//! ));
//! let addr = Address::new(0x100);
//! assert!(cache.read(addr).is_none()); // cold miss
//! cache.fill(addr, BlockData::zeroed(32), FillMode::Compress, None);
//! assert!(cache.read(addr).is_some());
//! ```

mod cache;
mod memo;
pub mod probe;
mod set;
pub mod timeline;

pub use cache::{
    CompressedCache, DirtyBlock, Evicted, FillOutcome, HitInfo, ResidentBlock, SetOccupancy,
};
pub use probe::{CacheProbe, EvictionReason, ProbeEviction, ProbeFill, ProbeHit};
pub use timeline::{AccessTimeline, LatencyModel, TimelineRecord};

use ehs_compress::Algorithm;
use ehs_model::CacheParams;
use serde::{Deserialize, Serialize};

/// Data-array segment granularity in bytes.
pub const SEGMENT_BYTES: u32 = 8;

/// How many times the nominal associativity the tag array can address when
/// blocks are compressed (doubled tags, as in the paper's Fig 4/5 examples
/// where each entry holds up to two compressed blocks).
pub const TAG_FACTOR: u32 = 2;

/// Per-fill policy decision made by the compression governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FillMode {
    /// Compress the incoming block (and resident uncompressed blocks if
    /// room is still needed).
    Compress,
    /// Store uncompressed; fall back to plain LRU replacement.
    Bypass,
}

/// Static configuration of one compressed cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Geometry and energy parameters.
    pub params: CacheParams,
    /// Which compression algorithm the data array uses.
    pub algorithm: Algorithm,
}

impl CacheConfig {
    /// Creates a configuration.
    pub fn new(params: CacheParams, algorithm: Algorithm) -> Self {
        CacheConfig { params, algorithm }
    }

    /// Segments per uncompressed block.
    ///
    /// # Panics
    ///
    /// Panics if the block size is not a multiple of [`SEGMENT_BYTES`].
    pub fn segments_per_block(&self) -> u32 {
        assert!(
            self.params.block_size.is_multiple_of(SEGMENT_BYTES),
            "block size must be a multiple of {SEGMENT_BYTES}"
        );
        self.params.block_size / SEGMENT_BYTES
    }

    /// Data-array segments per set.
    pub fn segments_per_set(&self) -> u32 {
        self.params.ways * self.segments_per_block()
    }

    /// Maximum resident blocks per set (tag-array limit).
    pub fn max_blocks_per_set(&self) -> u32 {
        self.params.ways * TAG_FACTOR
    }
}

/// Cumulative hit/miss/traffic counters for one cache.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Blocks filled.
    pub fills: u64,
    /// Blocks evicted (for capacity or tags).
    pub evictions: u64,
    /// Evictions forced by LRU replacement — data-array or tag-array
    /// pressure on a fill, write expansion. A subset of `evictions`.
    #[serde(default)]
    pub capacity_evictions: u64,
    /// Evictions forced by explicit invalidation (EDBP dead-block
    /// retirement). A subset of `evictions`; together with
    /// `capacity_evictions` it partitions them.
    #[serde(default)]
    pub forced_evictions: u64,
    /// Evictions of blocks stored compressed.
    pub compressed_evictions: u64,
    /// Compression operations performed (incoming or resident).
    pub compressions: u64,
    /// Decompression operations performed (hits on compressed blocks,
    /// fat writes, dirty compressed evictions).
    pub decompressions: u64,
    /// Write hits that expanded a compressed block back to full size.
    pub fat_writes: u64,
    /// Write hits that re-packed a compressed block (decompress + modify +
    /// compress), a subset of `compressions`.
    pub recompressions: u64,
    /// Fills stored compressed.
    pub compressed_fills: u64,
    /// Fills that bypassed compression.
    pub bypassed_fills: u64,
}

impl CacheStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate over all accesses (0 when there were none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Hit rate over all accesses (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_helpers() {
        let cfg = CacheConfig::new(CacheParams::table1(), Algorithm::Bdi);
        assert_eq!(cfg.segments_per_block(), 4);
        assert_eq!(cfg.segments_per_set(), 8);
        assert_eq!(cfg.max_blocks_per_set(), 4);
    }

    #[test]
    fn stats_rates() {
        let stats = CacheStats {
            read_hits: 6,
            read_misses: 2,
            write_hits: 1,
            write_misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(stats.accesses(), 10);
        assert_eq!(stats.miss_rate(), 0.3);
        assert_eq!(stats.hit_rate(), 0.7);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
