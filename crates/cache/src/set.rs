//! One cache set: struct-of-arrays line metadata plus LRU bookkeeping.
//!
//! The tag and recency arrays are kept separate from the line payloads so
//! the two hot scans — `find` over tags, `rank_of`/`lru_victim` over
//! ticks — each walk a dense `u64` array instead of striding over payload
//! bytes. The three arrays are index-aligned: entry `i` of each describes
//! the same resident line.

use ehs_model::BlockData;

/// Payload and status of one resident cache line (the cold part; the tag
/// and recency stamp live in the set's parallel arrays).
///
/// The uncompressed bytes are always kept (`data`) so functional reads and
/// writes are exact; `compressed` + `segments` record how the block sits in
/// the segmented data array.
#[derive(Debug, Clone)]
pub(crate) struct Line {
    pub data: BlockData,
    pub dirty: bool,
    /// Whether the data array holds this block in compressed form.
    pub compressed: bool,
    /// Data-array footprint in segments.
    pub segments: u32,
}

/// A set of resident lines in struct-of-arrays layout.
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheSet {
    /// Tag of each resident line.
    pub tags: Vec<u64>,
    /// Monotonic recency stamp of each line (larger = more recent).
    pub ticks: Vec<u64>,
    /// Recency stamp at which each line was filled (never restamped):
    /// `tick − born` is the block's lifetime in accesses, the telemetry
    /// cachescope folds into its lifetime distributions.
    pub born: Vec<u64>,
    /// Payload/status of each line.
    pub lines: Vec<Line>,
    /// Running total of `lines[i].segments` — kept in lockstep by `push`,
    /// `swap_remove`, `clear`, and `set_line_segments` so the space check
    /// on every fill is O(1) instead of a stride over the line payloads.
    used: u32,
}

impl CacheSet {
    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Appends a line; `tick` doubles as its birth stamp.
    pub fn push(&mut self, tag: u64, tick: u64, line: Line) {
        self.used += line.segments;
        self.tags.push(tag);
        self.ticks.push(tick);
        self.born.push(tick);
        self.lines.push(line);
    }

    /// Removes the line at `idx` (order not preserved), returning its tag
    /// and payload.
    pub fn swap_remove(&mut self, idx: usize) -> (u64, Line) {
        let tag = self.tags.swap_remove(idx);
        self.ticks.swap_remove(idx);
        self.born.swap_remove(idx);
        let line = self.lines.swap_remove(idx);
        self.used -= line.segments;
        (tag, line)
    }

    /// Drops every line.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.ticks.clear();
        self.born.clear();
        self.lines.clear();
        self.used = 0;
    }

    /// Index of the line with `tag`, if resident.
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.tags.iter().position(|&t| t == tag)
    }

    /// Total data-array segments in use.
    pub fn used_segments(&self) -> u32 {
        debug_assert_eq!(self.used, self.recount_segments());
        self.used
    }

    /// The incremental segment counter, with no cross-check — what the
    /// accounting proptest compares against [`CacheSet::recount_segments`].
    pub fn used_incremental(&self) -> u32 {
        self.used
    }

    /// From-scratch recount of the data-array segments in use.
    pub fn recount_segments(&self) -> u32 {
        self.lines.iter().map(|l| l.segments).sum::<u32>()
    }

    /// Rewrites the data-array footprint (and compressed flag) of the line
    /// at `idx`, keeping the running segment total in lockstep.
    pub fn set_line_segments(&mut self, idx: usize, segments: u32, compressed: bool) {
        let line = &mut self.lines[idx];
        self.used = self.used - line.segments + segments;
        line.segments = segments;
        line.compressed = compressed;
    }

    /// Index of the least-recently-used line, optionally excluding one tag.
    pub fn lru_victim(&self, protect: Option<u64>) -> Option<usize> {
        (0..self.len()).filter(|&i| Some(self.tags[i]) != protect).min_by_key(|&i| self.ticks[i])
    }

    /// Recency rank of the line at `idx`: 0 = most recently used.
    ///
    /// The rank counts how many resident lines are more recent, which is
    /// exactly the LRU *stack depth* ACC consults: a hit at rank >= ways
    /// means the block was only present thanks to compression.
    pub fn rank_of(&self, idx: usize) -> u32 {
        let tick = self.ticks[idx];
        self.ticks.iter().filter(|&&t| t > tick).count() as u32
    }

    /// Lines in LRU-first order (oldest first), as indices.
    #[cfg(test)]
    pub fn lru_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| self.ticks[i]);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(entries: &[(u64, u32, u64)]) -> CacheSet {
        let mut s = CacheSet::default();
        for &(tag, segments, tick) in entries {
            s.push(
                tag,
                tick,
                Line {
                    data: BlockData::zeroed(32),
                    dirty: false,
                    compressed: segments < 4,
                    segments,
                },
            );
        }
        s
    }

    #[test]
    fn find_and_segments() {
        let set = set(&[(1, 4, 10), (2, 2, 20)]);
        assert_eq!(set.find(1), Some(0));
        assert_eq!(set.find(3), None);
        assert_eq!(set.used_segments(), 6);
    }

    #[test]
    fn lru_victim_is_oldest() {
        let set = set(&[(1, 4, 10), (2, 4, 5), (3, 4, 20)]);
        assert_eq!(set.lru_victim(None), Some(1));
        // Protecting the oldest redirects to the next oldest.
        assert_eq!(set.lru_victim(Some(2)), Some(0));
    }

    #[test]
    fn rank_counts_more_recent_lines() {
        let set = set(&[(1, 4, 10), (2, 4, 5), (3, 4, 20)]);
        assert_eq!(set.rank_of(2), 0); // tick 20 = MRU
        assert_eq!(set.rank_of(0), 1);
        assert_eq!(set.rank_of(1), 2); // tick 5 = LRU
    }

    #[test]
    fn lru_order_sorts_oldest_first() {
        let set = set(&[(1, 4, 10), (2, 4, 5), (3, 4, 20)]);
        assert_eq!(set.lru_order(), vec![1, 0, 2]);
    }

    #[test]
    fn swap_remove_keeps_arrays_aligned() {
        let mut s = set(&[(1, 4, 10), (2, 2, 20), (3, 1, 30)]);
        let (tag, line) = s.swap_remove(0);
        assert_eq!(tag, 1);
        assert_eq!(line.segments, 4);
        assert_eq!(s.len(), 2);
        // Entry 0 is now the former last entry, in every array.
        assert_eq!(s.tags[0], 3);
        assert_eq!(s.ticks[0], 30);
        assert_eq!(s.born[0], 30);
        assert_eq!(s.lines[0].segments, 1);
    }

    #[test]
    fn empty_set_has_no_victim() {
        let set = CacheSet::default();
        assert_eq!(set.lru_victim(None), None);
        assert_eq!(set.used_segments(), 0);
    }
}
