//! One cache set: a small vector of lines plus LRU bookkeeping.

use ehs_model::BlockData;

/// One resident cache line.
///
/// The uncompressed bytes are always kept (`data`) so functional reads and
/// writes are exact; `compressed` + `segments` record how the block sits in
/// the segmented data array.
#[derive(Debug, Clone)]
pub(crate) struct Line {
    pub tag: u64,
    pub data: BlockData,
    pub dirty: bool,
    /// Whether the data array holds this block in compressed form.
    pub compressed: bool,
    /// Data-array footprint in segments.
    pub segments: u32,
    /// Monotonic recency stamp (larger = more recent).
    pub last_tick: u64,
}

/// A set of resident lines.
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheSet {
    pub lines: Vec<Line>,
}

impl CacheSet {
    /// Index of the line with `tag`, if resident.
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.lines.iter().position(|l| l.tag == tag)
    }

    /// Total data-array segments in use.
    pub fn used_segments(&self) -> u32 {
        self.lines.iter().map(|l| l.segments).sum()
    }

    /// Index of the least-recently-used line, optionally excluding one tag.
    pub fn lru_victim(&self, protect: Option<u64>) -> Option<usize> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| Some(l.tag) != protect)
            .min_by_key(|(_, l)| l.last_tick)
            .map(|(i, _)| i)
    }

    /// Recency rank of the line at `idx`: 0 = most recently used.
    ///
    /// The rank counts how many resident lines are more recent, which is
    /// exactly the LRU *stack depth* ACC consults: a hit at rank >= ways
    /// means the block was only present thanks to compression.
    pub fn rank_of(&self, idx: usize) -> u32 {
        let tick = self.lines[idx].last_tick;
        self.lines.iter().filter(|l| l.last_tick > tick).count() as u32
    }

    /// Lines in LRU-first order (oldest first), as indices.
    pub fn lru_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.lines.len()).collect();
        order.sort_by_key(|&i| self.lines[i].last_tick);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(tag: u64, segments: u32, tick: u64) -> Line {
        Line {
            tag,
            data: BlockData::zeroed(32),
            dirty: false,
            compressed: segments < 4,
            segments,
            last_tick: tick,
        }
    }

    #[test]
    fn find_and_segments() {
        let set = CacheSet { lines: vec![line(1, 4, 10), line(2, 2, 20)] };
        assert_eq!(set.find(1), Some(0));
        assert_eq!(set.find(3), None);
        assert_eq!(set.used_segments(), 6);
    }

    #[test]
    fn lru_victim_is_oldest() {
        let set = CacheSet { lines: vec![line(1, 4, 10), line(2, 4, 5), line(3, 4, 20)] };
        assert_eq!(set.lru_victim(None), Some(1));
        // Protecting the oldest redirects to the next oldest.
        assert_eq!(set.lru_victim(Some(2)), Some(0));
    }

    #[test]
    fn rank_counts_more_recent_lines() {
        let set = CacheSet { lines: vec![line(1, 4, 10), line(2, 4, 5), line(3, 4, 20)] };
        assert_eq!(set.rank_of(2), 0); // tick 20 = MRU
        assert_eq!(set.rank_of(0), 1);
        assert_eq!(set.rank_of(1), 2); // tick 5 = LRU
    }

    #[test]
    fn lru_order_sorts_oldest_first() {
        let set = CacheSet { lines: vec![line(1, 4, 10), line(2, 4, 5), line(3, 4, 20)] };
        assert_eq!(set.lru_order(), vec![1, 0, 2]);
    }

    #[test]
    fn empty_set_has_no_victim() {
        let set = CacheSet::default();
        assert_eq!(set.lru_victim(None), None);
        assert_eq!(set.used_segments(), 0);
    }
}
