//! The compressed cache proper.

use ehs_compress::AnyCompressor;
use ehs_model::{Address, BlockData};

use crate::memo::SizeMemo;
use crate::probe::{CacheProbe, EvictionReason, ProbeEviction, ProbeFill, ProbeHit};
use crate::set::{CacheSet, Line};
use crate::{CacheConfig, CacheStats, FillMode};

/// Information about a cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The block was stored compressed, so this access paid a
    /// decompression.
    pub was_compressed: bool,
    /// LRU stack depth of the block *before* this access (0 = MRU). A rank
    /// of `ways` or more means the hit happened only because compression
    /// stretched the set's capacity — the signal ACC rewards.
    pub lru_rank: u32,
    /// For reads: the loaded word. For writes: the word that was
    /// overwritten.
    pub word: u32,
}

/// A block pushed out of the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    /// Block-aligned address.
    pub addr: Address,
    /// Uncompressed contents at eviction time.
    pub data: BlockData,
    /// Whether the block needs writing back.
    pub dirty: bool,
    /// Whether the block sat compressed (a dirty one pays a decompression
    /// on its way out).
    pub was_compressed: bool,
}

/// The result of a fill.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Victims pushed out to make room, in eviction order.
    pub evicted: Vec<Evicted>,
    /// Compression operations performed during this fill (incoming block
    /// and/or resident blocks squeezed for space).
    pub compressions: u32,
    /// Whether the incoming block ended up stored compressed.
    pub stored_compressed: bool,
}

/// A dirty block drained for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyBlock {
    /// Block-aligned address.
    pub addr: Address,
    /// Uncompressed contents.
    pub data: BlockData,
    /// Whether draining paid a decompression.
    pub was_compressed: bool,
}

/// A snapshot row describing one resident block (for dead-block predictors
/// and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentBlock {
    /// Block-aligned address.
    pub addr: Address,
    /// Whether the block is dirty.
    pub dirty: bool,
    /// Whether the block is stored compressed.
    pub compressed: bool,
    /// Recency stamp of the last access (monotonic across the cache).
    pub last_tick: u64,
}

/// Point-in-time occupancy of one set: the raw rows of the sampled
/// full-cache snapshot (`set × way` occupancy map) cachescope streams as
/// JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetOccupancy {
    /// Set index.
    pub set: u32,
    /// Data-array segments in use.
    pub used_segments: u32,
    /// `(segments, compressed)` of each resident line, in slot order.
    pub blocks: Vec<(u32, bool)>,
}

/// A write-back, LRU, set-associative cache with a segmented data array
/// supporting block compression. See the crate docs for the model.
#[derive(Debug)]
pub struct CompressedCache {
    config: CacheConfig,
    compressor: AnyCompressor,
    sets: Vec<CacheSet>,
    num_sets: u32,
    tick: u64,
    stats: CacheStats,
    size_memo: SizeMemo,
    /// Cache introspection observer; `None` (the default) costs one
    /// untaken branch per report site. See [`crate::probe`].
    probe: Option<Box<dyn CacheProbe>>,
}

impl Clone for CompressedCache {
    /// Clones contents and counters; the probe (an exclusive observer,
    /// not cache state) stays with the original — clones start detached.
    fn clone(&self) -> Self {
        CompressedCache {
            config: self.config,
            compressor: self.compressor.clone(),
            sets: self.sets.clone(),
            num_sets: self.num_sets,
            tick: self.tick,
            stats: self.stats,
            size_memo: self.size_memo.clone(),
            probe: None,
        }
    }
}

impl CompressedCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheParams::num_sets`](ehs_model::CacheParams::num_sets)).
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.params.num_sets();
        let _ = config.segments_per_block(); // validate block/segment ratio
        CompressedCache {
            config,
            compressor: config.algorithm.compressor(),
            sets: vec![CacheSet::default(); num_sets as usize],
            num_sets,
            tick: 0,
            stats: CacheStats::default(),
            size_memo: SizeMemo::default(),
            probe: None,
        }
    }

    /// Attaches a [`CacheProbe`], replacing any. Every subsequent hit,
    /// fill and eviction is reported to it.
    pub fn attach_probe(&mut self, probe: Box<dyn CacheProbe>) {
        self.probe = Some(probe);
    }

    /// Detaches and returns the probe (for end-of-run downcasting).
    pub fn take_probe(&mut self) -> Option<Box<dyn CacheProbe>> {
        self.probe.take()
    }

    /// Mutable access to the attached probe's concrete type, if one is
    /// attached and is a `T` — mid-run state queries (e.g. power-cycle
    /// boundary snapshots) go through [`CacheProbe::as_any_mut`].
    pub fn probe_downcast_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.probe.as_mut().and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// The static configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The compression engine in use.
    pub fn compressor(&self) -> &AnyCompressor {
        &self.compressor
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// `(hits, misses)` of the compression-size memo — diagnostics only,
    /// never part of simulation results.
    pub fn size_memo_counters(&self) -> (u64, u64) {
        self.size_memo.counters()
    }

    /// Segment footprint the compressor assigns to these block contents
    /// (memoized; exact — see [`SizeMemo`]).
    fn compressed_segments(&mut self, si: usize, idx: usize) -> u32 {
        let data = self.sets[si].lines[idx].data.as_slice();
        self.size_memo.segments(&self.compressor, data)
    }

    fn set_and_tag(&self, addr: Address) -> (usize, u64) {
        let bs = self.config.params.block_size;
        (addr.set_index(bs, self.num_sets) as usize, addr.tag(bs, self.num_sets))
    }

    fn block_base(&self, addr: Address) -> Address {
        addr.block_base(self.config.params.block_size)
    }

    fn addr_of(&self, set_idx: usize, tag: u64) -> Address {
        let bs = self.config.params.block_size as u64;
        Address::new((tag * self.num_sets as u64 + set_idx as u64) * bs)
    }

    /// Recency rank of line `idx` in set `si`, with an MRU shortcut: ticks
    /// are unique (the clock increments before every stamp), so a line
    /// stamped with the current clock value is rank 0 by construction and
    /// the O(ways) scan can be skipped.
    fn rank_with_mru_shortcut(&self, si: usize, idx: usize) -> u32 {
        if self.sets[si].ticks[idx] == self.tick {
            0
        } else {
            self.sets[si].rank_of(idx)
        }
    }

    /// `true` if the block containing `addr` is resident (no LRU update,
    /// no stats).
    pub fn contains(&self, addr: Address) -> bool {
        let (si, tag) = self.set_and_tag(addr);
        self.sets[si].find(tag).is_some()
    }

    /// Reads the 4-byte word at `addr`. `None` on miss (the caller fetches
    /// from NVM and calls [`CompressedCache::fill`]).
    pub fn read(&mut self, addr: Address) -> Option<HitInfo> {
        let (si, tag) = self.set_and_tag(addr);
        let offset = addr.block_offset(self.config.params.block_size) & !3;
        match self.sets[si].find(tag) {
            Some(idx) => {
                let rank = self.rank_with_mru_shortcut(si, idx);
                self.tick += 1;
                let set = &mut self.sets[si];
                let reuse = self.tick - set.ticks[idx];
                set.ticks[idx] = self.tick;
                let line = &set.lines[idx];
                let was_compressed = line.compressed;
                let segments = line.segments;
                let word = line.data.read_u32(offset);
                if was_compressed {
                    self.stats.decompressions += 1;
                }
                self.stats.read_hits += 1;
                if let Some(p) = &mut self.probe {
                    p.on_hit(ProbeHit { set: si as u32, was_compressed, segments, reuse });
                }
                Some(HitInfo { was_compressed, lru_rank: rank, word })
            }
            None => {
                self.stats.read_misses += 1;
                None
            }
        }
    }

    /// `true` if a read of `addr` would hit an *uncompressed, MRU* block —
    /// the precondition for [`CompressedCache::commit_read_hit_run`]. No
    /// LRU update, no stats.
    pub fn probe_mru_uncompressed(&self, addr: Address) -> bool {
        let (si, tag) = self.set_and_tag(addr);
        match self.sets[si].find(tag) {
            Some(idx) => {
                self.sets[si].ticks[idx] == self.tick && !self.sets[si].lines[idx].compressed
            }
            None => false,
        }
    }

    /// `Some(idx)` if a hit on `addr` would land on an uncompressed line
    /// at LRU rank below the nominal associativity — a *shallow* hit, one
    /// that an uncompressed cache of the same geometry would also serve.
    /// Such a hit is invisible to every governor (`on_hit` only reacts to
    /// `rank >= ways` or a compressed line), involves no decompression,
    /// and cannot trigger a repack or eviction. The rank comparison early-
    /// exits at `ways`, so this is one tag scan plus one tick scan.
    fn find_shallow(&self, si: usize, tag: u64, ways: u32) -> Option<usize> {
        let set = &self.sets[si];
        let idx = set.find(tag)?;
        if set.lines[idx].compressed {
            return None;
        }
        let t = set.ticks[idx];
        let mut newer = 0u32;
        for &tk in set.ticks.iter() {
            if tk > t {
                newer += 1;
                if newer >= ways {
                    return None;
                }
            }
        }
        Some(idx)
    }

    /// Fused probe + commit: if a read of `addr` would be a shallow
    /// uncompressed hit (see [`CompressedCache::find_shallow`]), applies
    /// one read hit exactly as [`CompressedCache::read`] would — LRU
    /// stamp plus the hit counter — and returns `true`; otherwise changes
    /// nothing.
    pub fn try_commit_shallow_read(&mut self, addr: Address) -> bool {
        let (si, tag) = self.set_and_tag(addr);
        match self.find_shallow(si, tag, self.config.params.ways) {
            Some(idx) => {
                self.tick += 1;
                let reuse = self.tick - self.sets[si].ticks[idx];
                self.sets[si].ticks[idx] = self.tick;
                self.stats.read_hits += 1;
                if let Some(p) = &mut self.probe {
                    // Shallow hits land on uncompressed (full-footprint)
                    // lines, matching what `read` would have reported.
                    let segments = self.config.segments_per_block();
                    p.on_hit(ProbeHit { set: si as u32, was_compressed: false, segments, reuse });
                }
                true
            }
            None => false,
        }
    }

    /// Fused probe + commit for a store: if a write of `value` at `addr`
    /// would be a shallow uncompressed hit, applies the write exactly as
    /// [`CompressedCache::write`] would — the word, the dirty bit, the LRU
    /// stamp, and the hit counter — and returns `true`; otherwise changes
    /// nothing. On this path `write()` has no other effects: the line is
    /// not compressed, so there is no decompression, repack, fat write, or
    /// eviction, and the returned `HitInfo` would describe a shallow
    /// uncompressed hit whose consumers are all inert.
    pub fn try_commit_shallow_write(&mut self, addr: Address, value: u32) -> bool {
        let (si, tag) = self.set_and_tag(addr);
        let offset = addr.block_offset(self.config.params.block_size) & !3;
        match self.find_shallow(si, tag, self.config.params.ways) {
            Some(idx) => {
                self.tick += 1;
                let set = &mut self.sets[si];
                let reuse = self.tick - set.ticks[idx];
                set.ticks[idx] = self.tick;
                let line = &mut set.lines[idx];
                line.data.write_u32(offset, value);
                line.dirty = true;
                self.stats.write_hits += 1;
                if let Some(p) = &mut self.probe {
                    let segments = self.config.segments_per_block();
                    p.on_hit(ProbeHit { set: si as u32, was_compressed: false, segments, reuse });
                }
                true
            }
            None => false,
        }
    }

    /// Applies `n` back-to-back read hits to the MRU uncompressed block
    /// containing `addr`, exactly as `n` [`CompressedCache::read`] calls
    /// would: the clock advances by `n`, the line's stamp follows it, and
    /// `read_hits` grows by `n`. (Each intermediate read would re-hit the
    /// same line at rank 0 with no decompression, so no other state can
    /// change.)
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`CompressedCache::probe_mru_uncompressed`]
    /// holds for `addr`.
    pub fn commit_read_hit_run(&mut self, addr: Address, n: u64) {
        debug_assert!(self.probe_mru_uncompressed(addr));
        let (si, tag) = self.set_and_tag(addr);
        let Some(idx) = self.sets[si].find(tag) else {
            unreachable!("commit_read_hit_run requires a resident block");
        };
        self.tick += n;
        self.sets[si].ticks[idx] = self.tick;
        self.stats.read_hits += n;
        if let Some(p) = &mut self.probe {
            // MRU precondition: every hit in the run has reuse distance 1.
            p.on_hit_run(si as u32, self.config.segments_per_block(), n);
        }
    }

    /// Writes the 4-byte `value` at `addr`. `None` on miss (write-allocate:
    /// the caller fetches the block and fills with the store applied).
    ///
    /// A write hit on a *compressed* block cannot absorb the store in
    /// place; what happens next is the policy's call, passed as `repack`:
    ///
    /// * `repack = true` (compression enabled): decompress, modify,
    ///   **re-compress**. One decompression plus one compression per store
    ///   — the dominant `M` term of the paper's Eq. 2 (`f = M/N`
    ///   approaches 1 for store-heavy code). If the modified contents no
    ///   longer save a segment the line expands anyway (a *fat write*).
    /// * `repack = false` (compression disabled, e.g. Kagura's RM mode):
    ///   decompress once and store back uncompressed; future stores to the
    ///   line stop paying compression energy. The expansion may evict.
    pub fn write(
        &mut self,
        addr: Address,
        value: u32,
        repack: bool,
    ) -> Option<(HitInfo, Vec<Evicted>)> {
        let (si, tag) = self.set_and_tag(addr);
        let offset = addr.block_offset(self.config.params.block_size) & !3;
        let Some(idx) = self.sets[si].find(tag) else {
            self.stats.write_misses += 1;
            return None;
        };
        let rank = self.rank_with_mru_shortcut(si, idx);
        self.tick += 1;
        let full_segments = self.config.segments_per_block();
        let set = &mut self.sets[si];
        let reuse = self.tick - set.ticks[idx];
        set.ticks[idx] = self.tick;
        let line = &mut set.lines[idx];
        let was_compressed = line.compressed;
        let segments = line.segments;
        let old_word = line.data.read_u32(offset);
        line.data.write_u32(offset, value);
        line.dirty = true;
        if let Some(p) = &mut self.probe {
            // Reported as the block sat when the store landed (pre-repack).
            p.on_hit(ProbeHit { set: si as u32, was_compressed, segments, reuse });
        }
        let mut evicted = Vec::new();
        if was_compressed {
            self.stats.decompressions += 1;
            if repack {
                // Repack the modified contents.
                self.stats.compressions += 1;
                self.stats.recompressions += 1;
                let segs = self.compressed_segments(si, idx);
                if segs < full_segments {
                    self.sets[si].set_line_segments(idx, segs, true);
                } else {
                    self.sets[si].set_line_segments(idx, full_segments, false);
                    self.stats.fat_writes += 1;
                }
            } else {
                // Compression disabled: expand and stay uncompressed.
                self.stats.fat_writes += 1;
                self.sets[si].set_line_segments(idx, full_segments, false);
            }
            evicted = self.make_room(si, 0, Some(tag), FillMode::Bypass, &mut 0);
        }
        self.stats.write_hits += 1;
        Some((HitInfo { was_compressed, lru_rank: rank, word: old_word }, evicted))
    }

    /// Inserts the block containing `addr` with the given policy decision.
    /// `apply_store` optionally applies a pending 4-byte store (offset
    /// within block, value) and marks the line dirty (write-allocate path).
    ///
    /// # Panics
    ///
    /// Panics if the block is already resident or `data` is not one block.
    pub fn fill(
        &mut self,
        addr: Address,
        data: BlockData,
        mode: FillMode,
        apply_store: Option<(u32, u32)>,
    ) -> FillOutcome {
        // Debug-only: both preconditions are established by the caller (a
        // fill always follows a miss on the same address), and the
        // residency check is a full tag scan on the hottest miss path.
        debug_assert_eq!(
            data.len(),
            self.config.params.block_size as usize,
            "fill must be one block"
        );
        let (si, tag) = self.set_and_tag(addr);
        debug_assert!(self.sets[si].find(tag).is_none(), "block already resident");

        // Merge the pending store *before* compressing: the hardware packs
        // the block once, with the allocating store already applied.
        let mut data = data;
        let mut dirty = false;
        if let Some((offset, value)) = apply_store {
            data.write_u32(offset & !3, value);
            dirty = true;
        }

        let full_segments = self.config.segments_per_block();
        let mut compressions = 0u32;
        let (segments, stored_compressed) = match mode {
            FillMode::Compress => {
                compressions += 1;
                self.stats.compressions += 1;
                let segs = self.size_memo.segments(&self.compressor, data.as_slice());
                if segs < full_segments {
                    (segs, true)
                } else {
                    (full_segments, false)
                }
            }
            FillMode::Bypass => (full_segments, false),
        };

        let mut evicted = self.make_room(si, segments, None, mode, &mut compressions);

        // Tag-array limit.
        while self.sets[si].len() as u32 >= self.config.max_blocks_per_set() {
            if let Some(e) = self.evict_one(si, None) {
                evicted.push(e);
            } else {
                break;
            }
        }

        self.tick += 1;
        self.sets[si].push(
            tag,
            self.tick,
            Line { data, dirty, compressed: stored_compressed, segments },
        );
        debug_assert!(self.sets[si].used_segments() <= self.config.segments_per_set());

        self.stats.fills += 1;
        if stored_compressed {
            self.stats.compressed_fills += 1;
        }
        if mode == FillMode::Bypass {
            self.stats.bypassed_fills += 1;
        }
        if let Some(p) = &mut self.probe {
            p.on_fill(ProbeFill {
                set: si as u32,
                segments,
                full_segments,
                stored_compressed,
                used_after: self.sets[si].used_incremental(),
                blocks_after: self.sets[si].len() as u32,
            });
        }
        FillOutcome { evicted, compressions, stored_compressed }
    }

    /// Frees segments in set `si` until `needed` extra segments fit.
    ///
    /// In [`FillMode::Compress`], resident uncompressed blocks are squeezed
    /// (LRU-first) before anything is evicted; in [`FillMode::Bypass`] the
    /// set goes straight to LRU eviction — Kagura's RM-mode behaviour.
    fn make_room(
        &mut self,
        si: usize,
        needed: u32,
        protect: Option<u64>,
        mode: FillMode,
        compressions: &mut u32,
    ) -> Vec<Evicted> {
        let capacity = self.config.segments_per_set();
        let mut evicted = Vec::new();
        // The compressor squeezes at most a couple of residents per fill
        // (the paper: "compress ... *some of* the existing uncompressed
        // blocks"); unbounded retries would burn energy recompressing the
        // same incompressible lines on every fill. The tried-tags scratch
        // is inline — this path runs on every space-constrained fill.
        const MAX_SQUEEZES_PER_FILL: usize = 2;
        let mut tried = [None; MAX_SQUEEZES_PER_FILL];
        let mut tried_n = 0;
        while self.sets[si].used_segments() + needed > capacity {
            if mode == FillMode::Compress && tried_n < MAX_SQUEEZES_PER_FILL {
                // The LRU-most resident uncompressed block not yet tried.
                // (Ticks are globally unique, so the min-tick eligible
                // line is exactly the first eligible line in LRU order.)
                let set = &self.sets[si];
                let candidate = (0..set.len())
                    .filter(|&i| {
                        !set.lines[i].compressed
                            && Some(set.tags[i]) != protect
                            && !tried[..tried_n].contains(&Some(set.tags[i]))
                    })
                    .min_by_key(|&i| set.ticks[i]);
                if let Some(i) = candidate {
                    let full = self.config.segments_per_block();
                    *compressions += 1;
                    self.stats.compressions += 1;
                    let segs = self.compressed_segments(si, i);
                    tried[tried_n] = Some(self.sets[si].tags[i]);
                    tried_n += 1;
                    if segs < full {
                        self.sets[si].set_line_segments(i, segs, true);
                    }
                    // Incompressible residents stay as they are; the attempt
                    // still cost energy (counted above). Either way re-check
                    // the space condition before falling back to eviction.
                    continue;
                }
            }
            match self.evict_one(si, protect) {
                Some(e) => evicted.push(e),
                None => break, // nothing left to evict (set empty / all protected)
            }
        }
        evicted
    }

    fn evict_one(&mut self, si: usize, protect: Option<u64>) -> Option<Evicted> {
        let idx = self.sets[si].lru_victim(protect)?;
        let lifetime = self.tick - self.sets[si].born[idx];
        let idle = self.tick - self.sets[si].ticks[idx];
        let (tag, line) = self.sets[si].swap_remove(idx);
        self.stats.evictions += 1;
        self.stats.capacity_evictions += 1;
        if line.compressed {
            self.stats.compressed_evictions += 1;
            if line.dirty {
                // Dirty compressed victims decompress on the way to NVM.
                self.stats.decompressions += 1;
            }
        }
        if let Some(p) = &mut self.probe {
            p.on_evict(ProbeEviction {
                set: si as u32,
                reason: EvictionReason::Capacity,
                segments: line.segments,
                was_compressed: line.compressed,
                lifetime,
                idle,
            });
        }
        Some(Evicted {
            addr: self.addr_of(si, tag),
            data: line.data,
            dirty: line.dirty,
            was_compressed: line.compressed,
        })
    }

    /// Invalidates the block containing `addr`, returning it if it was
    /// resident (used by dead-block predictors to retire blocks early).
    pub fn invalidate_block(&mut self, addr: Address) -> Option<Evicted> {
        let (si, tag) = self.set_and_tag(addr);
        let idx = self.sets[si].find(tag)?;
        let lifetime = self.tick - self.sets[si].born[idx];
        let idle = self.tick - self.sets[si].ticks[idx];
        let (_, line) = self.sets[si].swap_remove(idx);
        self.stats.evictions += 1;
        self.stats.forced_evictions += 1;
        if line.compressed {
            self.stats.compressed_evictions += 1;
            if line.dirty {
                self.stats.decompressions += 1;
            }
        }
        if let Some(p) = &mut self.probe {
            p.on_evict(ProbeEviction {
                set: si as u32,
                reason: EvictionReason::Forced,
                segments: line.segments,
                was_compressed: line.compressed,
                lifetime,
                idle,
            });
        }
        Some(Evicted {
            addr: self.block_base(addr),
            data: line.data,
            dirty: line.dirty,
            was_compressed: line.compressed,
        })
    }

    /// Visits every dirty block (for JIT checkpointing), marking each
    /// clean. Compressed dirty blocks pay a decompression each.
    ///
    /// The visitor receives `(block address, contents, was_compressed)`.
    /// Contents are borrowed in place from the resident line, so the
    /// checkpoint path copies nothing per block — this is the simulator's
    /// hot drain primitive ([`CompressedCache::drain_dirty`] is the
    /// allocating convenience wrapper).
    pub fn for_each_dirty(&mut self, mut visit: impl FnMut(Address, &BlockData, bool)) {
        let block_size = self.config.params.block_size as u64;
        for si in 0..self.sets.len() {
            for idx in 0..self.sets[si].len() {
                let tag = self.sets[si].tags[idx];
                let line = &mut self.sets[si].lines[idx];
                if line.dirty {
                    line.dirty = false;
                    if line.compressed {
                        self.stats.decompressions += 1;
                    }
                    visit(
                        Address::new((tag * self.num_sets as u64 + si as u64) * block_size),
                        &line.data,
                        line.compressed,
                    );
                }
            }
        }
    }

    /// Drains every dirty block (for JIT checkpointing), marking them
    /// clean. Compressed dirty blocks pay a decompression each.
    pub fn drain_dirty(&mut self) -> Vec<DirtyBlock> {
        let mut out = Vec::new();
        self.for_each_dirty(|addr, data, was_compressed| {
            out.push(DirtyBlock { addr, data: data.clone(), was_compressed });
        });
        out
    }

    /// Clears every line (power failure: SRAM contents are lost).
    ///
    /// Not an eviction for the [`CacheStats`] counters (nothing is
    /// replaced or written back), but an attached probe sees every lost
    /// block as an [`EvictionReason::PowerLoss`] departure.
    pub fn invalidate_all(&mut self) {
        if let Some(mut p) = self.probe.take() {
            for (si, set) in self.sets.iter().enumerate() {
                for idx in 0..set.len() {
                    p.on_evict(ProbeEviction {
                        set: si as u32,
                        reason: EvictionReason::PowerLoss,
                        segments: set.lines[idx].segments,
                        was_compressed: set.lines[idx].compressed,
                        lifetime: self.tick - set.born[idx],
                        idle: self.tick - set.ticks[idx],
                    });
                }
            }
            self.probe = Some(p);
        }
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident blocks.
    pub fn resident_count(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Snapshot of every resident block (for dead-block predictors).
    pub fn resident_blocks(&self) -> Vec<ResidentBlock> {
        let mut out = Vec::with_capacity(self.resident_count());
        for (si, set) in self.sets.iter().enumerate() {
            for idx in 0..set.len() {
                out.push(ResidentBlock {
                    addr: self.addr_of(si, set.tags[idx]),
                    dirty: set.lines[idx].dirty,
                    compressed: set.lines[idx].compressed,
                    last_tick: set.ticks[idx],
                });
            }
        }
        out
    }

    /// The cache-global recency clock (compare with
    /// [`ResidentBlock::last_tick`]).
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Point-in-time `set × way` occupancy rows for every set — the
    /// sampled full-cache snapshot cachescope streams as JSONL.
    pub fn occupancy_map(&self) -> Vec<SetOccupancy> {
        self.sets
            .iter()
            .enumerate()
            .map(|(si, set)| SetOccupancy {
                set: si as u32,
                used_segments: set.used_incremental(),
                blocks: set.lines.iter().map(|l| (l.segments, l.compressed)).collect(),
            })
            .collect()
    }

    /// The incremental used-segment counter of set `si`, with no
    /// cross-check — compare with
    /// [`CompressedCache::recount_set_segments`] (the accounting
    /// proptest pins their equality).
    pub fn set_used_incremental(&self, si: usize) -> u32 {
        self.sets[si].used_incremental()
    }

    /// From-scratch recount of set `si`'s data-array segments in use.
    pub fn recount_set_segments(&self, si: usize) -> u32 {
        self.sets[si].recount_segments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_compress::Algorithm;
    use ehs_model::CacheParams;

    fn cache() -> CompressedCache {
        CompressedCache::new(CacheConfig::new(CacheParams::table1(), Algorithm::Bdi))
    }

    /// Addresses that all land in set 0 of the Table-I geometry
    /// (4 sets x 32B blocks: stride 128B).
    fn conflict_addr(i: u64) -> Address {
        Address::new(i * 128)
    }

    fn zero_block() -> BlockData {
        BlockData::zeroed(32)
    }

    fn random_block(seed: u8) -> BlockData {
        let mut data = BlockData::zeroed(32);
        let mut x = seed as u32 ^ 0xA5A5_5A5A;
        for w in 0..8 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.write_u32(w * 4, x);
        }
        data
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache();
        let addr = Address::new(0x40);
        assert!(c.read(addr).is_none());
        c.fill(addr, zero_block(), FillMode::Bypass, None);
        let hit = c.read(addr).expect("hit after fill");
        assert!(!hit.was_compressed);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn read_returns_block_word() {
        let mut c = cache();
        let mut data = zero_block();
        data.write_u32(8, 0xFEED);
        c.fill(Address::new(0x200), data, FillMode::Bypass, None);
        assert_eq!(c.read(Address::new(0x208)).unwrap().word, 0xFEED);
        // Unaligned reads snap to the containing word.
        assert_eq!(c.read(Address::new(0x20A)).unwrap().word, 0xFEED);
    }

    #[test]
    fn bypass_mode_holds_only_ways_blocks() {
        let mut c = cache();
        for i in 0..3 {
            let out = c.fill(conflict_addr(i), random_block(i as u8), FillMode::Bypass, None);
            if i < 2 {
                assert!(out.evicted.is_empty(), "fill {i} evicted {:?}", out.evicted);
            } else {
                assert_eq!(out.evicted.len(), 1, "third fill must evict LRU");
                assert_eq!(out.evicted[0].addr, conflict_addr(0));
            }
        }
        assert_eq!(c.resident_count(), 2);
    }

    #[test]
    fn compression_stretches_capacity() {
        let mut c = cache();
        // Zero blocks compress to 1 segment; 4 fit in one set (tag limit).
        for i in 0..4 {
            let out = c.fill(conflict_addr(i), zero_block(), FillMode::Compress, None);
            assert!(out.evicted.is_empty(), "fill {i} should not evict");
            assert!(out.stored_compressed);
        }
        assert_eq!(c.resident_count(), 4);
        // The tag array is the binding limit now.
        let out = c.fill(conflict_addr(4), zero_block(), FillMode::Compress, None);
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(c.resident_count(), 4);
    }

    #[test]
    fn incompressible_fills_fall_back_to_full_size() {
        let mut c = cache();
        let out = c.fill(conflict_addr(0), random_block(1), FillMode::Compress, None);
        assert!(!out.stored_compressed);
        assert_eq!(out.compressions, 1, "compression attempt still happened");
    }

    #[test]
    fn fill_compresses_resident_blocks_before_evicting() {
        let mut c = cache();
        // Two compressible blocks stored uncompressed fill the set.
        c.fill(conflict_addr(0), zero_block(), FillMode::Bypass, None);
        c.fill(conflict_addr(1), zero_block(), FillMode::Bypass, None);
        // A third fill in Compress mode squeezes the residents: no eviction.
        let out = c.fill(conflict_addr(2), zero_block(), FillMode::Compress, None);
        assert!(out.evicted.is_empty(), "residents should have been squeezed");
        assert!(out.compressions >= 2);
        assert_eq!(c.resident_count(), 3);
    }

    #[test]
    fn fill_evicts_when_residents_are_incompressible() {
        let mut c = cache();
        c.fill(conflict_addr(0), random_block(1), FillMode::Bypass, None);
        c.fill(conflict_addr(1), random_block(2), FillMode::Bypass, None);
        let out = c.fill(conflict_addr(2), random_block(3), FillMode::Compress, None);
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].addr, conflict_addr(0));
    }

    #[test]
    fn write_hit_on_compressed_block_repacks() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        let (hit, _) = c.write(conflict_addr(0), 0xAB, true).unwrap();
        assert!(hit.was_compressed);
        // One decompression + one re-compression; the block stays
        // compressed (one nonzero word still packs well).
        assert_eq!(c.stats().decompressions, 1);
        assert_eq!(c.stats().recompressions, 1);
        assert_eq!(c.stats().fat_writes, 0);
        let hit = c.read(conflict_addr(0)).unwrap();
        assert!(hit.was_compressed, "block should still be compressed");
        assert_eq!(hit.word, 0xAB);
    }

    #[test]
    fn fat_write_when_contents_stop_compressing() {
        let mut c = cache();
        // Three compressed blocks + one uncompressed: 1+1+1+4 = 7 <= 8.
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        c.fill(conflict_addr(1), zero_block(), FillMode::Compress, None);
        c.fill(conflict_addr(2), zero_block(), FillMode::Compress, None);
        c.fill(conflict_addr(3), random_block(1), FillMode::Bypass, None);
        assert_eq!(c.resident_count(), 4);
        // Scribble random words over block 0 until it no longer compresses:
        // the repack fails, the line expands, and the set must evict.
        let mut x = 0x9E3779B9u32;
        let mut expanded = false;
        for w in 0..8u64 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let (_, evicted) = c.write(conflict_addr(0) + w * 4, x, true).unwrap();
            if !evicted.is_empty() {
                expanded = true;
                break;
            }
        }
        assert!(expanded, "incompressible rewrite must expand and evict");
        assert!(c.stats().fat_writes >= 1);
        // The written block itself must survive.
        assert!(c.contains(conflict_addr(0)));
    }

    #[test]
    fn write_miss_returns_none_then_fill_applies_store() {
        let mut c = cache();
        assert!(c.write(Address::new(0x300), 5, true).is_none());
        assert_eq!(c.stats().write_misses, 1);
        c.fill(Address::new(0x300), zero_block(), FillMode::Bypass, Some((0, 5)));
        assert_eq!(c.read(Address::new(0x300)).unwrap().word, 5);
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].data.read_u32(0), 5);
    }

    #[test]
    fn lru_rank_reported_on_hits() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        c.fill(conflict_addr(1), zero_block(), FillMode::Compress, None);
        c.fill(conflict_addr(2), zero_block(), FillMode::Compress, None);
        // Block 0 is now LRU at rank 2 (beyond the 2 nominal ways).
        let hit = c.read(conflict_addr(0)).unwrap();
        assert_eq!(hit.lru_rank, 2);
        // And it is MRU afterwards.
        let hit = c.read(conflict_addr(0)).unwrap();
        assert_eq!(hit.lru_rank, 0);
    }

    #[test]
    fn read_hit_run_matches_repeated_reads() {
        // The batched MRU run must leave cache state and stats exactly
        // where n individual reads would.
        let mut batched = cache();
        let mut stepped = cache();
        for c in [&mut batched, &mut stepped] {
            c.fill(conflict_addr(0), random_block(1), FillMode::Bypass, None);
            c.fill(conflict_addr(1), zero_block(), FillMode::Compress, None);
            c.read(conflict_addr(0)).unwrap(); // make block 0 MRU
        }
        assert!(batched.probe_mru_uncompressed(conflict_addr(0)));
        assert!(!batched.probe_mru_uncompressed(conflict_addr(1)), "not MRU");
        assert!(!batched.probe_mru_uncompressed(conflict_addr(7)), "not resident");

        batched.commit_read_hit_run(conflict_addr(0) + 4, 5);
        for i in 0..5u64 {
            stepped.read(conflict_addr(0) + 4 * (i % 8)).unwrap();
        }
        assert_eq!(batched.stats(), stepped.stats());
        assert_eq!(batched.now(), stepped.now());
        assert_eq!(batched.resident_blocks(), stepped.resident_blocks());
        // Follow-up accesses agree too.
        assert_eq!(
            batched.read(conflict_addr(1)).unwrap(),
            stepped.read(conflict_addr(1)).unwrap()
        );
    }

    #[test]
    fn eviction_of_dirty_compressed_block_decompresses() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, Some((4, 1)));
        let d0 = c.stats().decompressions;
        // Force eviction with incompressible fills.
        c.fill(conflict_addr(1), random_block(1), FillMode::Bypass, None);
        let out = c.fill(conflict_addr(2), random_block(2), FillMode::Bypass, None);
        let victim =
            out.evicted.iter().chain(std::iter::empty()).find(|e| e.addr == conflict_addr(0));
        if let Some(v) = victim {
            assert!(v.dirty);
            if v.was_compressed {
                assert!(c.stats().decompressions > d0);
            }
        }
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn drain_dirty_marks_clean_and_reports_compressed() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, Some((0, 1)));
        c.fill(conflict_addr(1), zero_block(), FillMode::Bypass, Some((0, 2)));
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert!(c.drain_dirty().is_empty(), "second drain finds nothing dirty");
    }

    #[test]
    fn invalidate_all_empties_the_cache() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        c.fill(Address::new(0x40), zero_block(), FillMode::Bypass, None);
        c.invalidate_all();
        assert_eq!(c.resident_count(), 0);
        assert!(c.read(conflict_addr(0)).is_none());
    }

    #[test]
    fn invalidate_block_returns_the_victim() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Bypass, Some((0, 3)));
        let e = c.invalidate_block(conflict_addr(0)).unwrap();
        assert!(e.dirty);
        assert_eq!(e.data.read_u32(0), 3);
        assert!(c.invalidate_block(conflict_addr(0)).is_none());
    }

    #[test]
    fn evicted_addr_reconstruction_round_trips() {
        let mut c = cache();
        let addr = Address::new(0x1234 & !31); // block-aligned
        c.fill(addr, zero_block(), FillMode::Bypass, None);
        let blocks = c.resident_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].addr, addr.block_base(32));
    }

    #[test]
    fn resident_snapshot_reports_ticks() {
        let mut c = cache();
        c.fill(conflict_addr(0), zero_block(), FillMode::Bypass, None);
        let t0 = c.resident_blocks()[0].last_tick;
        c.read(conflict_addr(0));
        let t1 = c.resident_blocks()[0].last_tick;
        assert!(t1 > t0);
        assert!(c.now() >= t1);
    }

    #[test]
    fn memo_counters_track_repeated_contents() {
        let mut c = cache();
        // Same contents filled at two addresses: second fill's compression
        // is served from the memo.
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        c.fill(Address::new(0x40), zero_block(), FillMode::Compress, None);
        let (hits, misses) = c.size_memo_counters();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        // The stats still count both compression operations: memoization
        // saves host time, never modelled energy.
        assert_eq!(c.stats().compressions, 2);
    }

    #[test]
    fn eviction_counters_split_capacity_from_forced() {
        let mut c = cache();
        // Two incompressible fills fill the set; the third evicts by LRU.
        c.fill(conflict_addr(0), random_block(1), FillMode::Bypass, None);
        c.fill(conflict_addr(1), random_block(2), FillMode::Bypass, None);
        c.fill(conflict_addr(2), random_block(3), FillMode::Bypass, None);
        assert_eq!(c.stats().capacity_evictions, 1);
        assert_eq!(c.stats().forced_evictions, 0);
        // Dead-block retirement is the forced path.
        assert!(c.invalidate_block(conflict_addr(2)).is_some());
        assert_eq!(c.stats().capacity_evictions, 1);
        assert_eq!(c.stats().forced_evictions, 1);
        assert_eq!(
            c.stats().evictions,
            c.stats().capacity_evictions + c.stats().forced_evictions,
            "the split must partition total evictions"
        );
        // Power loss clears lines without counting evictions at all.
        let before = c.stats().evictions;
        c.invalidate_all();
        assert_eq!(c.stats().evictions, before);
    }

    #[derive(Debug, Default)]
    struct RecordingProbe {
        hits: Vec<crate::ProbeHit>,
        runs: Vec<(u32, u64)>,
        fills: Vec<crate::ProbeFill>,
        evictions: Vec<crate::ProbeEviction>,
    }

    impl crate::CacheProbe for RecordingProbe {
        fn on_hit(&mut self, h: crate::ProbeHit) {
            self.hits.push(h);
        }
        fn on_hit_run(&mut self, set: u32, _full_segments: u32, n: u64) {
            self.runs.push((set, n));
        }
        fn on_fill(&mut self, f: crate::ProbeFill) {
            self.fills.push(f);
        }
        fn on_evict(&mut self, e: crate::ProbeEviction) {
            self.evictions.push(e);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn take_recording(c: &mut CompressedCache) -> RecordingProbe {
        *c.take_probe().unwrap().into_any().downcast::<RecordingProbe>().unwrap()
    }

    #[test]
    fn probe_reports_hits_fills_and_every_eviction_reason() {
        use crate::EvictionReason;
        let mut c = cache();
        c.attach_probe(Box::<RecordingProbe>::default());

        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        c.read(conflict_addr(0)).unwrap();
        c.fill(conflict_addr(1), random_block(1), FillMode::Bypass, None);
        c.fill(conflict_addr(2), random_block(2), FillMode::Bypass, None); // capacity evicts
        c.invalidate_block(conflict_addr(2)).unwrap(); // forced
        c.invalidate_all(); // power loss for the remaining block

        let p = take_recording(&mut c);
        assert_eq!(p.fills.len(), 3);
        assert!(p.fills[0].stored_compressed && p.fills[0].segments < p.fills[0].full_segments);
        assert_eq!(p.fills[1].used_after, p.fills[0].segments + 4, "1 compressed + 1 full block");

        assert_eq!(p.hits.len(), 1);
        assert_eq!(p.hits[0].reuse, 1, "re-read right after the fill");
        assert!(p.hits[0].was_compressed);

        let reasons: Vec<EvictionReason> = p.evictions.iter().map(|e| e.reason).collect();
        assert_eq!(
            reasons,
            vec![EvictionReason::Capacity, EvictionReason::Forced, EvictionReason::PowerLoss]
        );
        for e in &p.evictions {
            assert!(e.lifetime >= e.idle, "a block cannot be idle longer than it lived");
        }
    }

    #[test]
    fn probe_hit_run_and_shallow_commits_report_like_full_reads() {
        let mut probed = cache();
        probed.attach_probe(Box::<RecordingProbe>::default());
        probed.fill(conflict_addr(0), random_block(1), FillMode::Bypass, None);
        probed.read(conflict_addr(0)).unwrap(); // MRU now
        assert!(probed.try_commit_shallow_read(conflict_addr(0)));
        assert!(probed.try_commit_shallow_write(conflict_addr(0), 7));
        probed.commit_read_hit_run(conflict_addr(0), 3);

        let p = take_recording(&mut probed);
        assert_eq!(p.hits.len(), 3, "read + shallow read + shallow write");
        assert!(p.hits.iter().skip(1).all(|h| h.reuse == 1 && !h.was_compressed));
        assert_eq!(p.runs, vec![(0, 3)]);
    }

    #[test]
    fn clone_detaches_the_probe_and_occupancy_map_reflects_contents() {
        let mut c = cache();
        c.attach_probe(Box::<RecordingProbe>::default());
        c.fill(conflict_addr(0), zero_block(), FillMode::Compress, None);
        let mut copy = c.clone();
        assert!(copy.take_probe().is_none(), "clones must start detached");

        let occ = c.occupancy_map();
        assert_eq!(occ.len(), 4, "table1 has 4 sets");
        assert_eq!(occ[0].blocks.len(), 1);
        assert!(occ[0].blocks[0].1, "stored compressed");
        assert_eq!(occ[0].used_segments, occ[0].blocks[0].0);
        assert_eq!(c.set_used_incremental(0), c.recount_set_segments(0));
    }

    #[test]
    fn works_with_other_geometries() {
        for (size, ways, bs) in
            [(128u32, 2u32, 32u32), (512, 4, 32), (256, 1, 32), (256, 2, 16), (4096, 8, 64)]
        {
            let params = CacheParams::table1().with_size(size).with_ways(ways).with_block_size(bs);
            let mut c = CompressedCache::new(CacheConfig::new(params, Algorithm::Fpc));
            for i in 0..64u64 {
                let addr = Address::new(i * bs as u64 * 3);
                if c.read(addr).is_none() {
                    c.fill(addr, BlockData::zeroed(bs), FillMode::Compress, None);
                }
            }
            assert!(c.stats().fills > 0);
        }
    }
}
