//! Compression-size memoization.
//!
//! The cache never stores compressed payloads — only the *segment count*
//! an encoding occupies (the data array models space, not bits). Since
//! every [`Compressor`] is a pure function of the input bytes, the segment
//! count for a given block value is a pure function too, and the kernels
//! re-present the same block values constantly (zero blocks, loop-carried
//! state, repeated pixel rows). Memoizing `bytes -> segments` turns the
//! dominant compression cost of store-heavy runs into a hash lookup.
//!
//! Exactness: the key is the full block content (no lossy hashing — the
//! `HashMap` resolves collisions by comparing the bytes), so a memo hit
//! returns precisely what `compress()` would. No invalidation is ever
//! needed: entries are never stale, only evicted wholesale when the map
//! grows past its bound.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use ehs_compress::{AnyCompressor, Compressor};

use crate::SEGMENT_BYTES;

/// Multiply-rotate hasher (FxHash construction) for the memo map.
///
/// The default `HashMap` hasher (SipHash) is DoS-resistant but costs more
/// than the rest of a memo hit combined on 32-byte keys. Keys here are
/// cache-block contents from deterministic kernels — not attacker
/// controlled — so a fast non-cryptographic hash is appropriate. Equality
/// is still byte-exact; the hash only picks the bucket.
#[derive(Default)]
struct BlockHasher(u64);

impl Hasher for BlockHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().unwrap());
            h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            let w = u64::from_le_bytes(tail) | ((rem.len() as u64) << 56);
            h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Map key holding block contents inline (for blocks up to 64 bytes — the
/// configured sizes) so that inserting a never-before-seen value costs no
/// heap allocation. Workloads that generate novel data on most stores
/// (e.g. iterator-valued output buffers) miss the memo constantly; an
/// allocation per miss would eat the savings.
///
/// `Borrow<[u8]>` lets lookups probe with the borrowed block slice
/// directly; `Eq` and `Hash` both go through `as_bytes` so the borrowed
/// and owned forms hash identically, as the `HashMap` contract requires.
#[derive(Debug, Clone)]
enum MemoKey {
    Inline { len: u8, buf: [u8; 64] },
    Heap(Box<[u8]>),
}

impl MemoKey {
    fn new(data: &[u8]) -> Self {
        if data.len() <= 64 {
            let mut buf = [0u8; 64];
            buf[..data.len()].copy_from_slice(data);
            MemoKey::Inline { len: data.len() as u8, buf }
        } else {
            MemoKey::Heap(data.into())
        }
    }

    fn as_bytes(&self) -> &[u8] {
        match self {
            MemoKey::Inline { len, buf } => &buf[..*len as usize],
            MemoKey::Heap(b) => b,
        }
    }
}

impl PartialEq for MemoKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for MemoKey {}

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl Borrow<[u8]> for MemoKey {
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// Memo of `block bytes -> data-array segments` for one compressor.
///
/// Bounded: once [`SizeMemo::MAX_ENTRIES`] distinct block values have been
/// seen, the map is cleared and rebuilt (simple, and in practice the
/// kernels' working set of distinct block values is far smaller).
#[derive(Debug, Clone, Default)]
pub(crate) struct SizeMemo {
    map: HashMap<MemoKey, u32, BuildHasherDefault<BlockHasher>>,
    hits: u64,
    misses: u64,
}

impl SizeMemo {
    /// Bound on distinct block values retained (64 Ki inline keys ≈ 5 MiB
    /// — negligible host memory, far beyond any kernel's distinct-value
    /// working set).
    const MAX_ENTRIES: usize = 1 << 16;

    /// Segment footprint of `data` under `compressor` — memoized, exact.
    pub fn segments(&mut self, compressor: &AnyCompressor, data: &[u8]) -> u32 {
        if let Some(&segs) = self.map.get(data) {
            self.hits += 1;
            return segs;
        }
        self.misses += 1;
        // Size-only query: `compressed_size_bits` is contractually equal
        // to `compress(data).encoded_bits()` but skips the bitstream
        // assembly (the proptest below pins the two together).
        let bytes = compressor.compressed_size_bits(data).div_ceil(8);
        let segs = bytes.div_ceil(SEGMENT_BYTES).max(1);
        if self.map.len() >= Self::MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(MemoKey::new(data), segs);
        segs
    }

    /// `(hits, misses)` so far — diagnostics only, not part of sim state.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ehs_compress::Algorithm;
    use proptest::prelude::*;

    proptest! {
        /// Memoized segment counts equal the uncached computation for
        /// every algorithm over arbitrary block contents, including
        /// repeated queries (memo hits) forced by the small alphabet.
        #[test]
        fn memoized_segments_match_uncached(
            blocks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 32), 1..12),
            compressible in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 32), 1..12),
        ) {
            for alg in Algorithm::ALL {
                let compressor = alg.compressor();
                let mut memo = SizeMemo::default();
                for b in blocks.iter().chain(&compressible).chain(&blocks) {
                    let direct = compressor
                        .compress(b)
                        .compressed_bytes()
                        .div_ceil(SEGMENT_BYTES)
                        .max(1);
                    prop_assert_eq!(memo.segments(&compressor, b), direct, "{:?}", alg);
                }
            }
        }
    }

    #[test]
    fn memo_matches_direct_compression() {
        for alg in Algorithm::ALL {
            let compressor = alg.compressor();
            let mut memo = SizeMemo::default();
            let mut block = [0u8; 32];
            for seed in 0u32..64 {
                let mut x = seed.wrapping_mul(0x9E37_79B9);
                for w in block.chunks_exact_mut(4) {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    // Mix of compressible (masked) and random words.
                    let v = if seed % 2 == 0 { x & 0xFF } else { x };
                    w.copy_from_slice(&v.to_le_bytes());
                }
                let direct =
                    compressor.compress(&block).compressed_bytes().div_ceil(SEGMENT_BYTES).max(1);
                // First query misses, second hits; both must equal direct.
                assert_eq!(memo.segments(&compressor, &block), direct, "{alg:?} seed {seed}");
                assert_eq!(memo.segments(&compressor, &block), direct, "{alg:?} seed {seed}");
            }
            let (hits, misses) = memo.counters();
            assert_eq!(hits, 64, "{alg:?}");
            assert_eq!(misses, 64, "{alg:?}");
        }
    }
}
