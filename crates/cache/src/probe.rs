//! Zero-cost-when-detached cache introspection.
//!
//! A [`CacheProbe`] is the cache-microarchitecture twin of the simulator's
//! flight recorder: the cache holds `Option<Box<dyn CacheProbe>>` and every
//! report site is one untaken branch when detached, so the default
//! configuration pays nothing (the simbench throughput gate pins this).
//! When attached, the cache reports every hit, fill and eviction with the
//! segment-level detail — compressed footprint, set index, reuse and
//! lifetime in recency ticks — that end-of-run [`CacheStats`] totals
//! cannot reconstruct.
//!
//! The trait lives in `ehs-cache` so the cache stays free of telemetry
//! dependencies; the aggregating implementation (`cachescope`) lives in
//! `ehs-sim`, which recovers its concrete type after a run through
//! [`CacheProbe::into_any`].
//!
//! # Determinism contract
//!
//! Probe callbacks describe *architectural* events only, with arguments
//! derived from cache state that the fast-forward and reference execution
//! loops maintain identically. The batched report
//! [`CacheProbe::on_hit_run`] is defined as exactly `n` MRU hits of reuse
//! distance 1, which is what the per-instruction loop reports one at a
//! time — so an attached probe observes the same stream under either loop
//! (the fastpath differential suite asserts this end to end).
//!
//! [`CacheStats`]: crate::CacheStats

/// Why a block left the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionReason {
    /// LRU replacement to make room in the data or tag array.
    Capacity,
    /// Explicit invalidation by a policy (e.g. EDBP dead-block
    /// retirement).
    Forced,
    /// SRAM contents lost at a power failure.
    PowerLoss,
}

impl EvictionReason {
    /// Stable lower-case label (`"capacity"`, `"forced"`, `"power_loss"`).
    pub fn label(self) -> &'static str {
        match self {
            EvictionReason::Capacity => "capacity",
            EvictionReason::Forced => "forced",
            EvictionReason::PowerLoss => "power_loss",
        }
    }
}

/// One hit report: where it landed and how the block sat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeHit {
    /// Set index.
    pub set: u32,
    /// Whether the block was stored compressed (the hit paid a
    /// decompression).
    pub was_compressed: bool,
    /// Data-array footprint of the block in segments.
    pub segments: u32,
    /// Recency-tick distance since the block's previous access (1 for a
    /// back-to-back re-reference) — the cache-level reuse distance.
    pub reuse: u64,
}

/// One fill report: the incoming block's footprint and the set's
/// occupancy after insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeFill {
    /// Set index.
    pub set: u32,
    /// Data-array footprint of the stored block in segments.
    pub segments: u32,
    /// Segments of an uncompressed block (for ratio bookkeeping).
    pub full_segments: u32,
    /// Whether the block was stored compressed.
    pub stored_compressed: bool,
    /// Data-array segments in use in the set after the fill.
    pub used_after: u32,
    /// Resident blocks in the set after the fill.
    pub blocks_after: u32,
}

/// One eviction report: why the block left and how long it lived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeEviction {
    /// Set index.
    pub set: u32,
    /// Why the block left.
    pub reason: EvictionReason,
    /// Data-array footprint in segments at eviction.
    pub segments: u32,
    /// Whether the block sat compressed.
    pub was_compressed: bool,
    /// Recency ticks between fill and eviction (block lifetime).
    pub lifetime: u64,
    /// Recency ticks since the block's last access (dead time).
    pub idle: u64,
}

/// Observer for per-access cache events; see the module docs for the
/// zero-cost and determinism contracts.
///
/// All methods default to no-ops so implementations subscribe only to
/// what they fold. `Debug` is a supertrait so instrumented caches keep
/// their derived `Debug`.
pub trait CacheProbe: std::fmt::Debug {
    /// A read or write hit (shallow fused commits included).
    fn on_hit(&mut self, _hit: ProbeHit) {}

    /// `n` back-to-back MRU read hits on one uncompressed block,
    /// reported in one call by the fast path's ALU-run batching.
    /// Equivalent to `n` [`CacheProbe::on_hit`] reports with
    /// `was_compressed: false` and `reuse: 1`.
    fn on_hit_run(&mut self, _set: u32, _full_segments: u32, _n: u64) {}

    /// A block was inserted.
    fn on_fill(&mut self, _fill: ProbeFill) {}

    /// A block left the cache.
    fn on_evict(&mut self, _evt: ProbeEviction) {}

    /// Mid-run access to the concrete aggregator (power-cycle boundary
    /// snapshots read the attached probe in place through
    /// `CompressedCache::probe_mut` and downcast).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Recovers the concrete aggregator after a run (the simulator takes
    /// the probe back and downcasts).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}
