//! Model-checking the compressed cache against a flat reference memory.
//!
//! Drives random access sequences through a `CompressedCache` backed by a
//! simple `HashMap` "NVM", mirroring every store into a flat reference
//! model, and asserts after every step that (a) loads return exactly the
//! reference bytes, (b) the segmented data array never exceeds capacity,
//! and (c) the tag array never exceeds its doubled limit.

use std::collections::HashMap;

use ehs_cache::{CacheConfig, CompressedCache, FillMode};
use ehs_compress::Algorithm;
use ehs_model::{Address, BlockData, CacheParams};
use proptest::prelude::*;

const BLOCK: u32 = 32;

/// A tiny functional memory: block-indexed bytes, zero by default.
#[derive(Default)]
struct RefMem {
    blocks: HashMap<u64, BlockData>,
}

impl RefMem {
    fn block(&mut self, addr: Address) -> &mut BlockData {
        self.blocks.entry(addr.block_index(BLOCK)).or_insert_with(|| seed_block(addr))
    }
}

/// Initial contents: deterministic mix of zero and patterned blocks.
fn seed_block(addr: Address) -> BlockData {
    let idx = addr.block_index(BLOCK);
    let mut b = BlockData::zeroed(BLOCK);
    if idx % 3 == 1 {
        for w in 0..8 {
            b.write_u32(w * 4, (idx as u32).wrapping_mul(0x9E37) ^ w);
        }
    } else if idx % 3 == 2 {
        for w in 0..8 {
            b.write_u32(w * 4, 0x4000_0000 + w);
        }
    }
    b
}

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u32),
    PowerFailure,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small footprint (64 blocks) over a conflict-heavy address space.
    let addr = 0u64..(64 * BLOCK as u64);
    prop_oneof![
        6 => addr.clone().prop_map(Op::Read),
        3 => (addr, any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        1 => Just(Op::PowerFailure),
    ]
}

fn run_model(ops: Vec<Op>, algorithm: Algorithm, mode_compress: bool) {
    let params = CacheParams::table1();
    let mut cache = CompressedCache::new(CacheConfig::new(params, algorithm));
    let mut memory = RefMem::default();
    let mode = if mode_compress { FillMode::Compress } else { FillMode::Bypass };
    let max_blocks = cache.config().max_blocks_per_set();
    let num_sets = params.num_sets();

    let writeback = |memory: &mut RefMem, addr: Address, data: &BlockData| {
        *memory.block(addr) = data.clone();
    };

    for op in ops {
        match op {
            Op::Read(raw) => {
                let addr = Address::new(raw & !3);
                let expected = memory.block(addr).read_u32(addr.block_offset(BLOCK) & !3);
                let word = match cache.read(addr) {
                    Some(hit) => hit.word,
                    None => {
                        let data = memory.block(addr).clone();
                        let out = cache.fill(addr.block_base(BLOCK), data, mode, None);
                        for e in out.evicted {
                            if e.dirty {
                                writeback(&mut memory, e.addr, &e.data);
                            }
                        }
                        cache.read(addr).expect("hit after fill").word
                    }
                };
                assert_eq!(word, expected, "load mismatch at {addr}");
            }
            Op::Write(raw, value) => {
                let addr = Address::new(raw & !3);
                match cache.write(addr, value, mode_compress) {
                    Some((_, evicted)) => {
                        for e in evicted {
                            if e.dirty {
                                writeback(&mut memory, e.addr, &e.data);
                            }
                        }
                    }
                    None => {
                        let data = memory.block(addr).clone();
                        let offset = addr.block_offset(BLOCK) & !3;
                        let out =
                            cache.fill(addr.block_base(BLOCK), data, mode, Some((offset, value)));
                        for e in out.evicted {
                            if e.dirty {
                                writeback(&mut memory, e.addr, &e.data);
                            }
                        }
                    }
                }
                // Mirror into the reference model *after* the cache absorbed
                // it (the cache is write-back; memory.block is our oracle of
                // architectural state, which a store updates immediately).
                memory.block(addr).write_u32(addr.block_offset(BLOCK) & !3, value);
            }
            Op::PowerFailure => {
                // JIT checkpoint: drain dirty blocks to memory, lose SRAM.
                for d in cache.drain_dirty() {
                    writeback(&mut memory, d.addr, &d.data);
                }
                cache.invalidate_all();
                assert_eq!(cache.resident_count(), 0);
            }
        }

        // Structural invariant after every operation: the tag array never
        // exceeds its doubled limit. (Segment capacity is asserted inside
        // the cache itself via debug_assert on every fill.)
        let mut per_set_blocks = vec![0u32; num_sets as usize];
        for rb in cache.resident_blocks() {
            let si = rb.addr.set_index(BLOCK, num_sets) as usize;
            per_set_blocks[si] += 1;
        }
        for (si, &blocks) in per_set_blocks.iter().enumerate() {
            assert!(blocks <= max_blocks, "set {si} holds {blocks} blocks > tag limit");
        }
    }

    // Final architectural check: flush everything and compare a sample.
    for d in cache.drain_dirty() {
        *memory.block(d.addr) = d.data.clone();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_with_compression(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_model(ops, Algorithm::Bdi, true);
    }

    #[test]
    fn cache_matches_reference_bypass(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        run_model(ops, Algorithm::Bdi, false);
    }

    #[test]
    fn cache_matches_reference_other_algorithms(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        alg in prop_oneof![Just(Algorithm::Fpc), Just(Algorithm::CPack), Just(Algorithm::Dzc)],
    ) {
        run_model(ops, alg, true);
    }
}
