//! Pins the struct-of-arrays incremental used-segment accounting.
//!
//! The per-set `used` counter is maintained incrementally by `push`,
//! `swap_remove`, `clear`, and `set_line_segments` so the space check on
//! every fill is O(1); cachescope's occupancy snapshots read it directly.
//! This proptest drives arbitrary fill / write / dead-block-retire /
//! power-cycle sequences and asserts after every operation that the
//! incremental counter in every set equals a from-scratch recount over
//! the resident lines.

use ehs_cache::{CacheConfig, CompressedCache, FillMode};
use ehs_compress::Algorithm;
use ehs_model::{Address, BlockData, CacheParams};
use proptest::prelude::*;

const BLOCK: u32 = 32;

#[derive(Debug, Clone)]
enum Op {
    /// Read, filling on a miss with compressible or random contents.
    Access(u64, bool),
    /// Store (write-allocate on miss); random contents can expand lines.
    Write(u64, u32),
    /// Dead-block retirement (the EDBP path).
    Invalidate(u64),
    /// Power failure: SRAM contents lost.
    PowerCycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = 0u64..(48 * BLOCK as u64);
    prop_oneof![
        5 => (addr.clone(), any::<bool>()).prop_map(|(a, c)| Op::Access(a, c)),
        4 => (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::Write(a, v)),
        2 => addr.prop_map(Op::Invalidate),
        1 => Just(Op::PowerCycle),
    ]
}

fn block(addr: Address, compressible: bool) -> BlockData {
    let mut b = BlockData::zeroed(BLOCK);
    if !compressible {
        let mut x = addr.get() as u32 ^ 0xDEAD_BEEF;
        for w in 0..8 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            b.write_u32(w * 4, x);
        }
    }
    b
}

fn assert_accounting(cache: &CompressedCache, step: usize) {
    for si in 0..cache.num_sets() as usize {
        assert_eq!(
            cache.set_used_incremental(si),
            cache.recount_set_segments(si),
            "set {si} incremental counter diverged from recount after op {step}"
        );
        assert!(
            cache.set_used_incremental(si) <= cache.config().segments_per_set(),
            "set {si} over capacity after op {step}"
        );
    }
}

fn run(ops: Vec<Op>, mode: FillMode, alg: Algorithm) {
    let mut cache = CompressedCache::new(CacheConfig::new(CacheParams::table1(), alg));
    let repack = mode == FillMode::Compress;
    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::Access(raw, compressible) => {
                let addr = Address::new(raw & !3);
                if cache.read(addr).is_none() {
                    cache.fill(addr.block_base(BLOCK), block(addr, compressible), mode, None);
                }
            }
            Op::Write(raw, value) => {
                let addr = Address::new(raw & !3);
                if cache.write(addr, value, repack).is_none() {
                    let offset = addr.block_offset(BLOCK) & !3;
                    let data = block(addr, value % 2 == 0);
                    cache.fill(addr.block_base(BLOCK), data, mode, Some((offset, value)));
                }
            }
            Op::Invalidate(raw) => {
                cache.invalidate_block(Address::new(raw & !3));
            }
            Op::PowerCycle => {
                cache.drain_dirty();
                cache.invalidate_all();
            }
        }
        assert_accounting(&cache, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_used_segments_equal_recount_compressing(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        run(ops, FillMode::Compress, Algorithm::Bdi);
    }

    #[test]
    fn incremental_used_segments_equal_recount_bypass(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        run(ops, FillMode::Bypass, Algorithm::Bdi);
    }

    #[test]
    fn incremental_used_segments_equal_recount_other_algorithms(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        alg in prop_oneof![Just(Algorithm::Fpc), Just(Algorithm::CPack), Just(Algorithm::Dzc)],
    ) {
        run(ops, FillMode::Compress, alg);
    }
}
