//! Facade crate for the Kagura reproduction: re-exports every subsystem
//! crate under one roof so examples, integration tests and downstream users
//! can depend on a single package.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Examples
//!
//! Run one of the paper's benchmarks on the Table-I platform with and
//! without intermittence-aware compression:
//!
//! ```
//! use kagura::sim::{run_app, GovernorSpec, SimConfig};
//! use kagura::workloads::App;
//!
//! let baseline = run_app(App::Sha, 0.02, &SimConfig::table1());
//! let cfg = SimConfig::table1()
//!     .with_governor(GovernorSpec::AccKagura(Default::default()));
//! let kagura = run_app(App::Sha, 0.02, &cfg);
//! assert!(baseline.completed && kagura.completed);
//! assert!(kagura.power_cycles.len() > 1, "intermittent execution");
//! ```

pub use ehs_cache as cache;
pub use ehs_compress as compress;
pub use ehs_energy as energy;
pub use ehs_mem as mem;
pub use ehs_model as model;
pub use ehs_sim as sim;
pub use ehs_workloads as workloads;
pub use kagura_core as core;
