//! Batteryless sensor-node scenario (paper §VII-B, AIoT).
//!
//! Models an RF-harvesting sensor node that runs a small inference-style
//! kernel (dense coefficient tables + streaming samples) and asks the
//! practical deployment questions: which capacitor should I solder in, and
//! is intermittence-aware compression worth the area?
//!
//! ```text
//! cargo run --release --example sensor_node
//! ```

use kagura::energy::CapacitorConfig;
use kagura::sim::{GovernorSpec, SimConfig};
use kagura::workloads::App;

fn main() {
    // An inference-ish memory-intensive kernel: g721d's quantisation-table
    // lookups are the closest analogue among the paper's suite.
    let app = App::G721d;
    let scale = 0.4;

    println!("batteryless sensor node: {app} under RF harvesting");
    println!();
    println!("capacitor | baseline time | +ACC+Kagura | gain    | cycles | ckpt energy");
    println!("----------|---------------|-------------|---------|--------|------------");

    for cap_uf in [1.0, 4.7, 10.0, 47.0] {
        let mut base_cfg = SimConfig::table1();
        base_cfg.capacitor = CapacitorConfig::with_capacitance_uf(cap_uf);
        let kagura_cfg =
            base_cfg.clone().with_governor(GovernorSpec::AccKagura(Default::default()));

        let base = kagura::sim::run_app(app, scale, &base_cfg);
        let kag = kagura::sim::run_app(app, scale, &kagura_cfg);
        println!(
            "{:>7.1}uF | {:>13} | {:>11} | {:>+6.2}% | {:>6} | {}",
            cap_uf,
            base.sim_time,
            kag.sim_time,
            (kag.speedup_over(&base) - 1.0) * 100.0,
            kag.power_cycles.len(),
            kag.breakdown[kagura::energy::EnergyCategory::CheckpointRestore],
        );
    }

    println!();
    println!("Reading the table:");
    println!(" * tiny capacitors -> many power cycles -> checkpoint overhead dominates;");
    println!(" * big capacitors  -> few cycles -> less for Kagura to avert;");
    println!(" * the sweet spot sits in the middle (the paper selects 4.7uF).");
}
