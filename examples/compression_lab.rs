//! Compression lab: run all four cache-compression algorithms over
//! representative data classes and print sizes, then apply the paper's
//! §III break-even analysis to each class.
//!
//! ```text
//! cargo run --release --example compression_lab
//! ```

use kagura::compress::{Algorithm, Compressor};
use kagura::core::analysis::{min_delta_rhit, CompressionMix};
use kagura::model::Energy;

fn data_classes() -> Vec<(&'static str, Vec<u8>)> {
    let zeros = vec![0u8; 32];
    let pixels: Vec<u8> = (0..8u32).flat_map(|i| (0x0040_1000 + i * 3).to_le_bytes()).collect();
    let coeffs: Vec<u8> =
        [3i32, -1, 0, 7, -4, 2, 0, -6].iter().flat_map(|v| v.to_le_bytes()).collect();
    let text = b"static int quantize(int level);\n".to_vec();
    let mut x = 0xDEAD_BEEFu32;
    let crypto: Vec<u8> = (0..8)
        .flat_map(|_| {
            x = x.wrapping_mul(0x9E3779B9).wrapping_add(0x85EB_CA6B);
            x.to_le_bytes()
        })
        .collect();
    vec![
        ("zeroed BSS", zeros),
        ("pixel row", pixels),
        ("DCT coeffs", coeffs),
        ("source text", text),
        ("crypto state", crypto),
    ]
}

fn main() {
    println!("compressed size of a 32B block (bytes; 33 = passthrough):");
    print!("{:>14}", "");
    for alg in Algorithm::ALL {
        print!("{:>9}", alg.name());
    }
    println!();
    for (label, block) in data_classes() {
        print!("{label:>14}");
        for alg in Algorithm::ALL {
            let engine = alg.compressor();
            let enc = engine.compress(&block);
            assert_eq!(engine.decompress(&enc), block, "lossless check");
            print!("{:>9}", enc.compressed_bytes());
        }
        println!();
    }

    println!();
    println!("break-even hit-rate improvement (paper Eq. 4) per algorithm,");
    println!("for a workload with a=0.5, e=0.25, f=0.5 and E_miss = 150 pJ:");
    let mix = CompressionMix::new(0.5, 0.25, 0.5);
    for alg in Algorithm::ALL {
        let cost = alg.default_cost();
        let threshold = min_delta_rhit(
            mix,
            cost.compress_energy,
            cost.decompress_energy,
            Energy::from_picojoules(150.0),
        );
        println!(
            "  {:>7}: compression pays off above dR_hit = {:.3}% (comp {}, decomp {})",
            alg.name(),
            threshold * 100.0,
            cost.compress_energy,
            cost.decompress_energy,
        );
    }
}
