//! Design explorer: compare the three EHS runtimes (NVSRAMCache, NvMR,
//! SweepCache) with and without intermittence-aware compression, plus the
//! EDBP/IPEX cache-management extensions (paper §VIII-H1/H3).
//!
//! ```text
//! cargo run --release --example design_explorer
//! ```

use kagura::sim::{EhsDesign, Extension, GovernorSpec, SimConfig};
use kagura::workloads::App;

fn main() {
    let app = App::Gsm;
    let scale = 0.4;
    println!("workload: {app} (scale {scale})\n");

    println!("=== EHS designs (each normalized to its own compressor-free baseline) ===");
    for design in EhsDesign::ALL {
        let base_cfg = SimConfig::table1().with_design(design);
        let base = kagura::sim::run_app(app, scale, &base_cfg);
        let kag = kagura::sim::run_app(
            app,
            scale,
            &base_cfg.clone().with_governor(GovernorSpec::AccKagura(Default::default())),
        );
        println!(
            "{:>12}: baseline {:>12} | +ACC+Kagura {:>12} ({:+.2}%), {} checkpoints, re-executed {} insts",
            design.name(),
            base.sim_time,
            kag.sim_time,
            (kag.speedup_over(&base) - 1.0) * 100.0,
            kag.checkpoints,
            kag.executed_insts - kag.committed_insts,
        );
    }

    println!();
    println!("=== cache-management extensions on NVSRAMCache ===");
    let plain = kagura::sim::run_app(app, scale, &SimConfig::table1());
    for (label, ext, gov) in [
        ("EDBP", Extension::edbp(), GovernorSpec::NoCompression),
        ("EDBP+Kagura", Extension::edbp(), GovernorSpec::AccKagura(Default::default())),
        ("IPEX", Extension::ipex(), GovernorSpec::NoCompression),
        ("IPEX+Kagura", Extension::ipex(), GovernorSpec::AccKagura(Default::default())),
    ] {
        let mut cfg = SimConfig::table1().with_governor(gov);
        cfg.extension = ext;
        let stats = kagura::sim::run_app(app, scale, &cfg);
        println!(
            "{label:>12}: {:>12} ({:+.2}% vs plain baseline), dcache miss {:.1}%",
            stats.sim_time,
            (stats.speedup_over(&plain) - 1.0) * 100.0,
            stats.dcache.miss_rate() * 100.0,
        );
    }
}
