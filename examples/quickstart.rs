//! Quickstart: run one benchmark on the paper's Table-I platform under
//! three policies — no compression, ACC, and ACC+Kagura — and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kagura::sim::{GovernorSpec, SimConfig};
use kagura::workloads::App;

fn main() {
    // The paper's default platform: NVSRAMCache EHS, 4.7 uF capacitor,
    // 256B I/D caches, BDI compression, RFHome ambient trace.
    let base_cfg = SimConfig::table1();
    let app = App::Jpegd;
    let scale = 0.5; // half-length workload for a fast demo

    println!("platform : NVSRAMCache, 4.7uF, 256B caches, BDI, RFHome trace");
    println!("workload : {app} (scale {scale})");
    println!();

    let baseline = kagura::sim::run_app(app, scale, &base_cfg);
    println!(
        "baseline     : {:>10} insts in {:>12}, {} power cycles, {} consumed",
        baseline.committed_insts,
        baseline.sim_time,
        baseline.power_cycles.len(),
        baseline.total_energy(),
    );

    for gov in [GovernorSpec::Acc, GovernorSpec::AccKagura(Default::default())] {
        let cfg = base_cfg.clone().with_governor(gov);
        let stats = kagura::sim::run_app(app, scale, &cfg);
        println!(
            "{:<13}: {:>10} insts in {:>12}, {} power cycles, {} consumed",
            gov.label(),
            stats.committed_insts,
            stats.sim_time,
            stats.power_cycles.len(),
            stats.total_energy(),
        );
        println!(
            "               speedup {:+.2}%, {} compressions ({} averted in RM), miss rate {:.1}%",
            (stats.speedup_over(&baseline) - 1.0) * 100.0,
            stats.compression_ops(),
            stats.rm_bypassed_fills,
            stats.dcache.miss_rate() * 100.0,
        );
    }

    println!();
    println!("Try other apps: {}", App::ALL.map(|a| a.name()).join(" "));
}
