//! Trace studio: generate the three ambient power traces, inspect their
//! statistics, write them in the paper's text format, read one back, and
//! watch a capacitor ride it through charge/discharge cycles.
//!
//! ```text
//! cargo run --release --example trace_studio
//! ```

use std::error::Error;

use kagura::energy::{Capacitor, CapacitorConfig, PowerTrace, TraceKind};
use kagura::model::{Energy, SimTime};

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== ambient sources (paper Fig 11) ===");
    for kind in TraceKind::ALL {
        let trace = PowerTrace::generate(kind, 42, 200_000);
        let stats = trace.stats();
        println!(
            "{:>8}: mean {:>9}, std {:>9}, stable {:>5.1}%, covers {}",
            kind,
            stats.mean,
            stats.std_dev,
            stats.stable_fraction * 100.0,
            trace.duration(),
        );
    }

    // Round-trip the paper's text format (one uW value per 10us window).
    let trace = PowerTrace::generate(TraceKind::RfHome, 42, 100_000);
    let mut buf = Vec::new();
    trace.write_text(&mut buf)?;
    let restored = PowerTrace::read_text(buf.as_slice())?;
    println!();
    println!(
        "text round-trip: wrote {} bytes, read back {} samples (equal length: {})",
        buf.len(),
        restored.len(),
        restored.len() == trace.len(),
    );

    // Ride the trace with the default 4.7uF capacitor and count how many
    // execution windows (v_rst -> v_ckpt) it would sustain while drawing a
    // steady 2 mW-equivalent active load at 5% duty.
    println!();
    println!("=== capacitor ride (4.7uF on RFHome) ===");
    let cfg = CapacitorConfig::default_4u7();
    let mut cap = Capacitor::new(cfg);
    cap.set_voltage(cfg.v_rst);
    let mut now = SimTime::ZERO;
    let step = SimTime::from_micros(10.0);
    let mut cycles = 0u32;
    let mut running = true;
    let active_drain_per_step = Energy::from_nanojoules(20.0); // ~2 mW
    while now.seconds() < 0.25 {
        cap.charge(trace.power_at(now), step);
        if running {
            cap.drain(active_drain_per_step);
            if cap.below_checkpoint() {
                cycles += 1;
                running = false;
            }
        } else if cap.above_restore() {
            running = true;
        }
        now += step;
    }
    println!(
        "in {now}: {cycles} power cycles, final V = {:.3} V ({} stored)",
        cap.voltage(),
        cap.stored(),
    );
    println!("usable window per cycle: {}", cfg.usable_energy());
    Ok(())
}
