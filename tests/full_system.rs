//! Cross-crate integration tests: drive the whole stack (workloads →
//! simulator → caches → compressors → NVM → capacitor) through the facade
//! crate and check system-level invariants the paper's evaluation relies
//! on.

use kagura::compress::Algorithm;
use kagura::energy::{CapacitorConfig, EnergyCategory, PowerTrace, TraceKind};
use kagura::sim::{run_app, run_program, EhsDesign, GovernorSpec, SimConfig};
use kagura::workloads::App;

const SCALE: f64 = 0.1;

fn base() -> SimConfig {
    SimConfig::table1()
}

#[test]
fn every_app_completes_on_every_policy() {
    for app in App::ALL {
        for gov in [
            GovernorSpec::NoCompression,
            GovernorSpec::Acc,
            GovernorSpec::AccKagura(Default::default()),
        ] {
            let stats = run_app(app, 0.05, &base().with_governor(gov));
            assert!(stats.completed, "{app} under {}", gov.label());
            assert!(stats.checkpoints > 0, "{app}: no power cycles at all?");
        }
    }
}

#[test]
fn baseline_never_compresses_and_acc_sometimes_does() {
    let baseline = run_app(App::G721d, SCALE, &base());
    assert_eq!(baseline.compression_ops(), 0);
    assert!(baseline.breakdown[EnergyCategory::Compress].is_zero());

    let acc = run_app(App::G721d, SCALE, &base().with_governor(GovernorSpec::Acc));
    assert!(acc.compression_ops() > 0);
    assert!(acc.breakdown[EnergyCategory::Compress].picojoules() > 0.0);
}

#[test]
fn energy_conservation_holds_end_to_end() {
    for gov in [GovernorSpec::NoCompression, GovernorSpec::AccKagura(Default::default())] {
        let stats = run_app(App::Jpegd, SCALE, &base().with_governor(gov));
        let initial = base().capacitor.energy_at(base().capacitor.v_max);
        let budget = stats.harvested + initial;
        assert!(
            stats.total_energy().picojoules() <= budget.picojoules() * 1.001,
            "{}: consumed {} out of {}",
            gov.label(),
            stats.total_energy(),
            budget
        );
    }
}

#[test]
fn power_cycle_lengths_match_the_paper_regime() {
    // Fig 14: power cycles hold thousands of instructions.
    let stats = run_app(App::Sha, SCALE, &base());
    let avg = stats.avg_insts_per_cycle();
    assert!((500.0..60_000.0).contains(&avg), "avg insts/cycle = {avg}");
}

#[test]
fn same_trace_means_same_energy_budget_across_policies() {
    // The paper replays one recorded trace so every configuration sees the
    // same ambient energy; with a fixed seed our runs must too.
    let a = run_app(App::Gsm, SCALE, &base());
    let b = run_app(App::Gsm, SCALE, &base());
    assert_eq!(a.sim_time, b.sim_time, "simulation must be deterministic");
    assert_eq!(a.harvested, b.harvested);
}

#[test]
fn kagura_averts_compressions_without_hurting_misses_much() {
    // Fig 15/18: Kagura cuts compression ops; miss rates stay close.
    let acc = run_app(App::Typeset, 0.3, &base().with_governor(GovernorSpec::Acc));
    let kag = run_app(
        App::Typeset,
        0.3,
        &base().with_governor(GovernorSpec::AccKagura(Default::default())),
    );
    assert!(
        kag.compression_ops() < acc.compression_ops(),
        "Kagura {} !< ACC {}",
        kag.compression_ops(),
        acc.compression_ops()
    );
    let miss_delta = kag.dcache.miss_rate() - acc.dcache.miss_rate();
    assert!(miss_delta < 0.05, "RM mode added {miss_delta:.3} miss rate");
}

#[test]
fn ideal_never_loses_to_plain_acc_badly() {
    // The two-phase oracle should match or beat ACC on waste-dominated
    // apps (it skips useless compressions entirely).
    for app in [App::Blowfish, App::Patricia, App::Typeset] {
        let acc = run_app(app, 0.2, &base().with_governor(GovernorSpec::Acc));
        let ideal = run_app(app, 0.2, &base().with_governor(GovernorSpec::IdealAcc));
        assert!(
            ideal.sim_time.seconds() <= acc.sim_time.seconds() * 1.005,
            "{app}: ideal {} vs ACC {}",
            ideal.sim_time,
            acc.sim_time
        );
    }
}

#[test]
fn all_ehs_designs_and_nvm_coherence() {
    // SweepCache re-executes; NvMR must not; all complete.
    for design in EhsDesign::ALL {
        let stats = run_app(App::Gsm, SCALE, &base().with_design(design));
        assert!(stats.completed, "{design}");
        match design {
            EhsDesign::SweepCache => assert!(stats.executed_insts >= stats.committed_insts),
            _ => assert_eq!(stats.executed_insts, stats.committed_insts),
        }
    }
}

#[test]
fn all_compression_algorithms_run_end_to_end() {
    for alg in Algorithm::ALL {
        let mut cfg = base().with_governor(GovernorSpec::Acc);
        cfg.algorithm = alg;
        let stats = run_app(App::Epic, SCALE, &cfg);
        assert!(stats.completed, "{alg}");
    }
}

#[test]
fn custom_trace_and_program_compose() {
    let program = App::Crc32.build(SCALE);
    let trace = PowerTrace::generate(TraceKind::Thermal, 9, 2_000_000);
    let stats = run_program(&program, &trace, &base());
    assert!(stats.completed);
    // Thermal is stable: cycle lengths should be highly consistent.
    let c = stats.load_consistency();
    assert!(c.frac_below_20 > 0.5, "thermal trace consistency = {}", c.frac_below_20);
}

#[test]
fn capacitor_size_scales_cycle_length() {
    let mut small_cfg = base();
    small_cfg.capacitor = CapacitorConfig::with_capacitance_uf(1.0);
    let mut large_cfg = base();
    large_cfg.capacitor = CapacitorConfig::with_capacitance_uf(47.0);
    let small = run_app(App::Sha, SCALE, &small_cfg);
    let large = run_app(App::Sha, SCALE, &large_cfg);
    assert!(
        large.avg_insts_per_cycle() > 5.0 * small.avg_insts_per_cycle(),
        "1uF {} vs 47uF {}",
        small.avg_insts_per_cycle(),
        large.avg_insts_per_cycle()
    );
}

#[test]
fn voltage_triggered_kagura_runs() {
    use kagura::core::{KaguraConfig, TriggerKind};
    let cfg = base().with_governor(GovernorSpec::AccKagura(KaguraConfig {
        trigger: TriggerKind::Voltage { fraction: 0.2 },
        ..Default::default()
    }));
    let stats = run_app(App::G721d, SCALE, &cfg);
    assert!(stats.completed);
}
