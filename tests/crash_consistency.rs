//! Crash-consistency: the whole point of an EHS runtime is that frequent
//! power failures are *invisible* to the program. These tests run each
//! design through hundreds of real power failures and compare the final
//! architectural memory image byte-for-byte against a reference run that
//! never loses power.

use kagura::energy::PowerTrace;
use kagura::mem::Nvm;
use kagura::model::Power;
use kagura::sim::{EhsDesign, GovernorSpec, SimConfig, Simulator};
use kagura::workloads::App;

const SCALE: f64 = 0.1;

/// Runs `app` under `cfg`, returning (power-failure count, final NVM).
fn run(app: App, cfg: &SimConfig, trace: &PowerTrace) -> (u64, Nvm) {
    let program = app.build(SCALE);
    let (stats, nvm) = Simulator::new(cfg.clone(), &program, trace).run_with_memory();
    assert!(stats.completed, "{app} did not complete");
    (stats.checkpoints, nvm)
}

/// Asserts two NVM images hold identical bytes over the union of all
/// materialised blocks.
fn assert_memory_equal(mut a: Nvm, mut b: Nvm, context: &str) {
    let mut indices = a.resident_indices();
    indices.extend(b.resident_indices());
    indices.sort_unstable();
    indices.dedup();
    assert!(!indices.is_empty(), "{context}: no blocks touched?");
    for idx in indices {
        let addr = a.block_addr(idx);
        let block_a = a.peek_block(addr).clone();
        let block_b = b.peek_block(addr).clone();
        assert_eq!(
            block_a, block_b,
            "{context}: architectural memory differs at block {idx} ({addr})"
        );
    }
}

fn intermittent_trace(cfg: &SimConfig) -> PowerTrace {
    PowerTrace::generate(cfg.trace_kind, cfg.trace_seed, 4_000_000)
}

/// A trace so strong the capacitor never drops below `V_ckpt`.
fn steady_trace() -> PowerTrace {
    PowerTrace::constant(Power::from_milliwatts(50.0), 1000)
}

#[test]
fn nvsramcache_is_crash_consistent() {
    for app in [App::Jpegd, App::Gsm, App::Dijkstra, App::Blowfish] {
        let cfg = SimConfig::table1();
        let (failures, nvm) = run(app, &cfg, &intermittent_trace(&cfg));
        let (no_failures, reference) = run(app, &cfg, &steady_trace());
        assert!(failures > 10, "{app}: want many power failures, got {failures}");
        assert_eq!(no_failures, 0, "{app}: steady trace must never fail");
        assert_memory_equal(nvm, reference, app.name());
    }
}

#[test]
fn nvsramcache_with_compression_is_crash_consistent() {
    // Compression must never corrupt data: same check with the full
    // ACC+Kagura stack switching modes mid-cycle.
    for app in [App::Jpegd, App::Typeset] {
        let cfg = SimConfig::table1().with_governor(GovernorSpec::AccKagura(Default::default()));
        let (failures, nvm) = run(app, &cfg, &intermittent_trace(&cfg));
        let (_, reference) = run(app, &cfg, &steady_trace());
        assert!(failures > 5, "{app}: got {failures} failures");
        assert_memory_equal(nvm, reference, app.name());
    }
}

#[test]
fn nvmr_is_crash_consistent() {
    let cfg = SimConfig::table1().with_design(EhsDesign::Nvmr);
    let (failures, nvm) = run(App::Gsm, &cfg, &intermittent_trace(&cfg));
    let (_, reference) = run(App::Gsm, &cfg, &steady_trace());
    assert!(failures > 10);
    assert_memory_equal(nvm, reference, "NvMR/gsm");
}

#[test]
fn sweepcache_reexecution_is_crash_consistent() {
    // SweepCache rolls back and re-executes; determinism of the kernels
    // must make the replayed stores land identically.
    let cfg = SimConfig::table1().with_design(EhsDesign::SweepCache);
    let (failures, nvm) = run(App::Adpcmd, &cfg, &intermittent_trace(&cfg));
    let (_, reference) = run(App::Adpcmd, &cfg, &steady_trace());
    assert!(failures > 10);
    assert_memory_equal(nvm, reference, "SweepCache/adpcmd");
}

#[test]
fn all_compression_algorithms_preserve_memory() {
    use kagura::compress::Algorithm;
    let reference_cfg = SimConfig::table1();
    let (_, reference) = run(App::Epic, &reference_cfg, &steady_trace());
    for alg in Algorithm::EXTENDED {
        let mut cfg = SimConfig::table1().with_governor(GovernorSpec::AlwaysCompress);
        cfg.algorithm = alg;
        let (failures, nvm) = run(App::Epic, &cfg, &intermittent_trace(&cfg));
        assert!(failures > 5, "{alg}");
        // Compare against the *uncompressed, failure-free* image: the
        // compressor in the datapath must be fully transparent.
        assert_memory_equal(nvm, reference.clone(), alg.name());
    }
}
