#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# The build environment is offline; --offline keeps cargo from trying to
# hit crates.io (everything external is vendored under crates/vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== faultgrid smoke (crash-consistency gate) =="
# Exhaustive injection on the short kernels, sampled injection on two
# apps across all three designs, and the harness's own mutation checks;
# the experiment asserts internally, so any recovery regression fails
# the gate here.
FAULTGRID_OUT="$(mktemp -d)"
trap 'rm -rf "$FAULTGRID_OUT"' EXIT
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    faultgrid --scale 0.005 --apps sha,crc32 --out "$FAULTGRID_OUT" --quiet

echo "ci: all checks passed"
