#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# The build environment is offline; --offline keeps cargo from trying to
# hit crates.io (everything external is vendored under crates/vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== simulator throughput gate (BENCH_sim.json, probes detached) =="
# The committed BENCH_sim.json is the baseline; a fresh measurement at a
# small fixed scale must reach >= 70% of its per-app single-thread IPS
# (IPS is close to scale-invariant, so the gate can run much shorter than
# the committed artifact). The baseline must also parse as JSON. simbench
# runs with no cache probe or cachescope attached, so this gate also
# certifies that the observability hooks stay free when detached — a
# probe-site regression on the hot path shows up as an IPS regression.
python3 -m json.tool BENCH_sim.json > /dev/null
SIMBENCH_OUT="$(mktemp)"
cargo run --release --offline -q -p kagura-bench --bin simbench -- \
    --scale 0.3 --repeat 5 --skip-reference --out "$SIMBENCH_OUT" \
    --check BENCH_sim.json --max-regression 0.30
rm -f "$SIMBENCH_OUT"

echo "== faultgrid smoke (crash-consistency gate) =="
# Exhaustive injection on the short kernels, sampled injection on two
# apps across all three designs, and the harness's own mutation checks;
# the experiment asserts internally, so any recovery regression fails
# the gate here.
FAULTGRID_OUT="$(mktemp -d)"
LEDGER_OUT="$(mktemp -d)"
CACHESCOPE_OUT="$(mktemp -d)"
RESUME_BASE="$(mktemp -d)"
RESUME_CUT="$(mktemp -d)"
FLEET_A="$(mktemp -d)"
FLEET_B="$(mktemp -d)"
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$FAULTGRID_OUT" "$LEDGER_OUT" "$CACHESCOPE_OUT" "$RESUME_BASE" "$RESUME_CUT" "$FLEET_A" "$FLEET_B" "$SERVE_DIR"' EXIT
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    faultgrid --scale 0.005 --apps sha,crc32 --out "$FAULTGRID_OUT" --quiet

echo "== ledger-audit smoke (energy-conservation gate) =="
# A short grid under --audit-strict: any power cycle whose energy ledger
# fails harvested = consumed + delta-stored aborts its cell, and repro
# exits non-zero on any violation or failed cell. energy_waste also dumps
# flight-record streams, which `repro explain` then parses back strictly
# (every JSONL line must round-trip) — the flight-record schema gate.
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    summary energy_waste --scale 0.01 --apps sha,crc32 --audit-strict \
    --out "$LEDGER_OUT" --telemetry "$LEDGER_OUT" --quiet
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    explain "$LEDGER_OUT" > /dev/null
echo "ledger balanced across the smoke grid; flight records parse back"

echo "== cachescope smoke (JSONL parse-back gate) =="
# One instrumented run dumps a cachescope stream (boundary rows, sampled
# occupancy snapshots, summary histograms); `repro explain` then parses
# it back strictly — every line must round-trip or the command fails
# with a file:line diagnostic naming the offending field. simrun itself
# also re-parses its own dump before rendering, so this exercises the
# schema gate twice.
cargo run --release --offline -q -p kagura-bench --bin simrun -- \
    sha --scale 0.02 --governor kagura \
    --cachescope "$CACHESCOPE_OUT/cachescope_sha.jsonl" \
    --cachescope-period 4096 > /dev/null 2>&1
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    explain "$CACHESCOPE_OUT" > /dev/null
echo "cachescope stream parses back strictly"

echo "== leakscope smoke (timing side-channel gate) =="
# The attack must recover the planted secret through C-PACK probe
# timings alone, the randomized-threshold countermeasure must strictly
# reduce the measured mutual information on the same cell, and both
# dumped streams must parse back strictly (simrun re-parses its own dump
# before rendering; `repro explain` parses them again below).
LEAKSCOPE_OUT="$(mktemp -d)"
trap 'rm -rf "$FAULTGRID_OUT" "$LEDGER_OUT" "$CACHESCOPE_OUT" "$LEAKSCOPE_OUT" "$RESUME_BASE" "$RESUME_CUT" "$FLEET_A" "$FLEET_B" "$SERVE_DIR"' EXIT
cargo run --release --offline -q -p kagura-bench --bin simrun -- \
    sha --algorithm cpack --governor always --leak-secret c4c4f33dc0ffee01 \
    --leakscope "$LEAKSCOPE_OUT/leakscope_cpack_always.jsonl" --json \
    > "$LEAKSCOPE_OUT/always.json" 2>/dev/null
cargo run --release --offline -q -p kagura-bench --bin simrun -- \
    sha --algorithm cpack --governor rand-threshold --leak-secret c4c4f33dc0ffee01 \
    --leakscope "$LEAKSCOPE_OUT/leakscope_cpack_rand_threshold.jsonl" --json \
    > "$LEAKSCOPE_OUT/rand.json" 2>/dev/null
python3 - "$LEAKSCOPE_OUT" <<'EOF'
import json, sys
out = sys.argv[1]
always = json.load(open(out + "/always.json"))["leakscope"]
rand = json.load(open(out + "/rand.json"))["leakscope"]
assert always["secret_recovered"], always
assert always["recovered"] == "c4c4f33dc0ffee01", always
assert always["recovered_bytes"] == 8 and always["secret_bytes"] == 8, always
assert rand["mi_bits"] < always["mi_bits"], (rand["mi_bits"], always["mi_bits"])
print(f"secret recovered through C-PACK timing alone; "
      f"MI {always['mi_bits']:.3f} -> {rand['mi_bits']:.3f} bits under rand-threshold")
EOF
cargo run --release --offline -q -p kagura-bench --bin repro -- \
    explain "$LEAKSCOPE_OUT" > /dev/null
echo "leakscope streams parse back strictly"

echo "== kill-and-resume gate (journaled resumable runs) =="
# A short two-experiment run, SIGKILLed mid-grid once the first artifact
# lands, then resumed; the resumed tree must be byte-identical to an
# uninterrupted run of the same invocation (the journal and any swept
# .tmp debris are the only permitted differences).
REPRO="$(pwd)/target/release/repro"
cargo build --release --offline -q -p kagura-bench --bin repro
RESUME_ARGS=(fig3 fig13 --scale 1.0 --apps sha,crc32 --jobs 1 --quiet)
"$REPRO" "${RESUME_ARGS[@]}" --out "$RESUME_BASE" > /dev/null

"$REPRO" "${RESUME_ARGS[@]}" --out "$RESUME_CUT" > /dev/null 2>&1 &
REPRO_PID=$!
# SIGKILL as soon as fig3's artifact is in place, i.e. mid-fig13-grid.
for _ in $(seq 1 600); do
    [ -f "$RESUME_CUT/fig3.json" ] && break
    sleep 0.01
done
kill -9 "$REPRO_PID" 2>/dev/null || true
wait "$REPRO_PID" 2>/dev/null || true

"$REPRO" "${RESUME_ARGS[@]}" --resume "$RESUME_CUT" > /dev/null
diff -r --exclude run_journal.jsonl --exclude '*.tmp' "$RESUME_BASE" "$RESUME_CUT"
echo "resume converged: output tree is byte-identical to the uninterrupted run"

echo "== fleet smoke (sharding-invariant population reports) =="
# The same small campaign under different worker counts and shard sizes
# must produce byte-identical fleet.json/fleet.jsonl — shard aggregates
# merge exactly, so neither parallelism nor shard boundaries may leak
# into the report. `repro explain` is not needed here: the fleet
# experiment already parses its own JSONL stream back strictly before
# exiting, so each run below is also a schema round-trip check.
FLEET_ARGS=(fleet --scale 0.002 --fleet-size 12 --fleet-seed 1 --quiet)
"$REPRO" "${FLEET_ARGS[@]}" --jobs 1 --fleet-shard 5 --out "$FLEET_A" > /dev/null
"$REPRO" "${FLEET_ARGS[@]}" --jobs 4 --fleet-shard 3 --out "$FLEET_B" > /dev/null
diff -r --exclude run_journal.jsonl --exclude fleet_journal.jsonl "$FLEET_A" "$FLEET_B"
python3 -m json.tool "$FLEET_A/fleet.json" > /dev/null
echo "fleet reports byte-identical across --jobs/--fleet-shard; stream parses back"

echo "== CLI typo gate (unknown flags must suggest, not run) =="
# A misspelled flag must fail fast with a did-you-mean suggestion rather
# than being swallowed as an experiment id or positional argument.
if "$REPRO" fleet --fleet-sizee 12 --out "$FLEET_A" > /dev/null 2>&1; then
    echo "repro accepted a misspelled flag" >&2
    exit 1
fi
# (|| true: the non-zero exit is the point; pipefail would otherwise trip.)
("$REPRO" fleet --fleet-sizee 12 2>&1 || true) | grep -q 'did you mean `--fleet-size`'
echo "misspelled flags are rejected with suggestions"

echo "== exit-code gate (usage=2, config=3, runtime=1) =="
# Scripted callers assert on *why* an invocation failed, so the failure
# classes must stay distinguishable (see kagura_bench::cli::CliError).
SIMRUN="$(pwd)/target/release/simrun"
cargo build --release --offline -q -p kagura-bench --bin simrun
expect_exit() {
    local want="$1"; shift
    local rc=0
    "$@" > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "expected exit $want from: $* (got $rc)" >&2
        exit 1
    fi
}
expect_exit 2 "$SIMRUN" --frobnicate              # usage: unknown flag
expect_exit 2 "$SIMRUN"                           # usage: missing app
expect_exit 3 "$SIMRUN" sha --governor zorp       # config: bad enum value
expect_exit 3 "$SIMRUN" nosuchapp                 # config: unknown app
expect_exit 2 "$REPRO" --scael 1                  # usage: misspelled flag
expect_exit 3 "$REPRO" nosuchexperiment           # config: unknown experiment
echo "exit codes distinguish usage/config/runtime failures"

echo "== serve gate (long-running what-if service) =="
# One server at workers=1/queue-depth=0: a byte-identical cached repeat,
# a shed under a concurrent burst while an in-flight query completes, a
# typed budget exhaustion that frees its worker, then a SIGTERM drain
# that must exit 0 and leave a warm cache behind.
"$SIMRUN" serve --tcp 127.0.0.1:0 --port-file "$SERVE_DIR/port" \
    --state "$SERVE_DIR/state.jsonl" --workers 1 --queue-depth 0 \
    > /dev/null 2> "$SERVE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 500); do
    [ -s "$SERVE_DIR/port" ] && break
    sleep 0.01
done
python3 - "$(cat "$SERVE_DIR/port")" <<'EOF'
import json, socket, sys, threading

host, port = sys.argv[1].rsplit(":", 1)

def rpc(line):
    s = socket.create_connection((host, int(port)), timeout=60)
    s.sendall(line.encode() + b"\n")
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
    s.close()
    return buf, json.loads(buf)

QUERY = '{"op":"query","id":"ci","app":"sha","scale":0.004,"governor":"kagura"}'
first_bytes, first = rpc(QUERY)
assert first["ok"], first
second_bytes, _ = rpc(QUERY)
assert second_bytes == first_bytes, "cached repeat must be byte-identical"

# Overload burst: 8 concurrent uncached queries against one worker and
# an empty queue. In-flight work must complete; the excess must shed
# with a typed `overloaded` error carrying a retry hint.
results = []
def worker(i):
    q = {"op": "query", "id": i, "app": "crc32", "scale": 0.01, "seed": i}
    results.append(rpc(json.dumps(q))[1])
threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
for t in threads:
    t.start()
for t in threads:
    t.join()
oks = [r for r in results if r["ok"]]
sheds = [r for r in results if not r["ok"] and r["error"]["kind"] == "overloaded"]
assert oks, f"in-flight queries must complete under overload: {results}"
assert sheds, f"a saturated server must shed: {results}"
assert all(s["error"]["retry_after_ms"] > 0 for s in sheds), sheds

# A poison query under a tiny budget is a typed error, not a wedge.
_, r = rpc('{"op":"query","id":"poison","app":"sha","scale":0.01,"max_insts":50}')
assert not r["ok"] and r["error"]["kind"] == "budget_exhausted", r
assert r["error"]["executed_insts"] >= 50, r
_, h = rpc('{"op":"health","id":"h"}')
assert h["health"]["status"] == "ok", h

_, m = rpc('{"op":"metrics","id":"m"}')
counters = {c["name"]: c["value"] for c in m["metrics"]["registry"]["counters"]}
assert counters["server_cache_hits"] >= 1, counters
assert counters["server_shed"] >= 1, counters
assert counters["server_budget_exhausted"] >= 1, counters
print("serve: cache hit, overload shed, and budget exhaustion all observed")
EOF
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"   # graceful drain must exit 0 (set -e enforces it)
[ -s "$SERVE_DIR/state.jsonl" ] || { echo "drain left no cache state" >&2; exit 1; }
echo "serve drained cleanly on SIGTERM with persisted cache state"

echo "ci: all checks passed"
