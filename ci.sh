#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# The build environment is offline; --offline keeps cargo from trying to
# hit crates.io (everything external is vendored under crates/vendor/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "ci: all checks passed"
